package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

func TestIDsDeterministicAndWellFormed(t *testing.T) {
	a := TraceID("campaign", "abc123")
	b := TraceID("campaign", "abc123")
	if a != b {
		t.Fatalf("TraceID not deterministic: %s vs %s", a, b)
	}
	if !ValidTraceID(a) {
		t.Fatalf("TraceID %q not well-formed", a)
	}
	if TraceID("campaign", "abc124") == a {
		t.Fatal("distinct parts collided")
	}
	// Part boundaries must matter: ("ab","c") != ("a","bc").
	if TraceID("ab", "c") == TraceID("a", "bc") {
		t.Fatal("part boundary ignored in TraceID")
	}
	s := SpanID(a, "cell", "deadbeef")
	if !ValidSpanID(s) {
		t.Fatalf("SpanID %q not well-formed", s)
	}
	if SpanID(a, "cell", "deadbeef") != s {
		t.Fatal("SpanID not deterministic")
	}
	if SpanID("x", "yz") == SpanID("xy", "z") {
		t.Fatal("part boundary ignored in SpanID")
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := TraceID("t")
	sid := SpanID("s")
	h := FormatTraceparent(tid, sid)
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok || gotT != tid || gotS != sid {
		t.Fatalf("round trip failed: %q -> %q %q %v", h, gotT, gotS, ok)
	}
	bad := []string{
		"",
		"00-" + tid + "-" + sid,          // missing flags
		"00-" + tid + "-" + sid + "-01x", // version 00 with trailing junk
		"ff-" + tid + "-" + sid + "-01",  // forbidden version
		"00-" + strings.Repeat("0", 32) + "-" + sid + "-01", // zero trace
		"00-" + tid + "-" + strings.Repeat("0", 16) + "-01", // zero span
		"00-" + strings.ToUpper(tid) + "-" + sid + "-01",    // uppercase
		"00_" + tid + "-" + sid + "-01",                     // bad separator
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
	// Future version with appended fields is accepted.
	if _, _, ok := ParseTraceparent("01-" + tid + "-" + sid + "-01-extra"); !ok {
		t.Error("future-version traceparent rejected")
	}
}

func TestRecorderTreeAndRoundTrip(t *testing.T) {
	rec := NewRecorder(false)
	root := rec.Root("job", TraceID("test"), "job-1")
	root.SetAttr("id", "job-1")
	c1 := root.Context().Start("campaign")
	g := c1.Context().Start("golden", "aa")
	g.SetAttr("cache", "miss")
	g.End()
	c2 := c1.Context().Start("cell", "bb")
	c2.SetAttr("design", "part")
	c2.End()
	c1.End()
	root.End()

	spans := rec.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[0].Name != "job" || spans[0].Parent != "" {
		t.Fatalf("canonical order: first span = %+v, want root job", spans[0])
	}
	node, err := BuildTree(spans)
	if err != nil {
		t.Fatalf("BuildTree: %v", err)
	}
	if node.Name != "job" || len(node.Children) != 1 || node.Children[0].Name != "campaign" {
		t.Fatalf("unexpected tree shape: %+v", node)
	}

	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	back, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadSpans: %v", err)
	}
	var buf2 bytes.Buffer
	if err := WriteSpans(&buf2, back); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("NDJSON round trip not byte-identical")
	}
	if !strings.HasPrefix(buf.String(), `{"schema":"pilotrf-spans/v1"}`) {
		t.Fatalf("missing schema header: %q", buf.String()[:40])
	}
}

func TestRecorderWallClock(t *testing.T) {
	rec := NewRecorder(true)
	root := rec.Root("r", TraceID("w"))
	ch := root.Context().Start("c")
	ch.SetWallAttr("worker", "3")
	ch.End()
	root.End()
	spans := rec.Spans()
	if _, err := BuildTree(spans); err != nil {
		t.Fatalf("wall tree invalid: %v", err)
	}
	for _, s := range spans {
		if s.Wall == nil {
			t.Fatalf("span %s missing wall section", s.Name)
		}
	}
	child := spans[1]
	if child.Wall.Attrs["worker"] != "3" {
		t.Fatalf("wall attr lost: %+v", child.Wall)
	}
	stripped := StripWall(spans)
	for _, s := range stripped {
		if s.Wall != nil {
			t.Fatal("StripWall left a wall section")
		}
	}
	if spans[0].Wall == nil {
		t.Fatal("StripWall mutated its input")
	}
}

func TestNoWallRecorderOmitsWallAttrs(t *testing.T) {
	rec := NewRecorder(false)
	root := rec.Root("r", TraceID("nw"))
	root.SetWallAttr("worker", "1")
	root.SetWallStart(123)
	root.End()
	s := rec.Spans()[0]
	if s.Wall != nil {
		t.Fatalf("wall section present on deterministic recorder: %+v", s.Wall)
	}
}

func TestNilSafety(t *testing.T) {
	var rec *Recorder
	sp := rec.Root("r", TraceID("n"))
	if sp != nil {
		t.Fatal("nil recorder Root != nil")
	}
	sp.SetAttr("k", "v")
	sp.SetWallAttr("k", "v")
	sp.SetWallStart(1)
	sp.End()
	sc := sp.Context()
	if sc.Active() {
		t.Fatal("nil span context active")
	}
	if sc.Start("x") != nil {
		t.Fatal("inactive Start != nil")
	}
	ctx := context.Background()
	if NewContext(ctx, sc) != ctx {
		t.Fatal("inactive NewContext allocated a new context")
	}
	if FromContext(ctx).Active() {
		t.Fatal("FromContext invented a span context")
	}
	if rec.Spans() != nil || rec.Len() != 0 || rec.WallClock() {
		t.Fatal("nil recorder not inert")
	}
}

func TestEndIdempotent(t *testing.T) {
	rec := NewRecorder(false)
	sp := rec.Root("r", TraceID("i"))
	sp.End()
	sp.End()
	if rec.Len() != 1 {
		t.Fatalf("double End recorded %d spans", rec.Len())
	}
}

func TestContextPropagation(t *testing.T) {
	rec := NewRecorder(false)
	root := rec.Root("r", TraceID("ctx"))
	ctx := NewContext(context.Background(), root.Context())
	sc := FromContext(ctx)
	if !sc.Active() || sc.SpanID() != root.Context().SpanID() {
		t.Fatalf("context round trip lost span: %+v", sc)
	}
	ch := sc.Start("child", "1")
	ch.End()
	root.End()
	if _, err := BuildTree(rec.Spans()); err != nil {
		t.Fatalf("tree: %v", err)
	}
}

func TestReadSpansRejects(t *testing.T) {
	tid := TraceID("rj")
	id := SpanID("a")
	okSpan := `{"trace":"` + tid + `","span":"` + id + `","name":"x"}`
	cases := map[string]string{
		"empty":          "",
		"no header":      okSpan + "\n",
		"wrong schema":   `{"schema":"pilotrf-spans/v0"}` + "\n",
		"garbage line":   `{"schema":"pilotrf-spans/v1"}` + "\n{nope\n",
		"bad trace id":   `{"schema":"pilotrf-spans/v1"}` + "\n" + `{"trace":"zz","span":"` + id + `","name":"x"}` + "\n",
		"bad span id":    `{"schema":"pilotrf-spans/v1"}` + "\n" + `{"trace":"` + tid + `","span":"12","name":"x"}` + "\n",
		"empty name":     `{"schema":"pilotrf-spans/v1"}` + "\n" + `{"trace":"` + tid + `","span":"` + id + `","name":""}` + "\n",
		"self parent":    `{"schema":"pilotrf-spans/v1"}` + "\n" + `{"trace":"` + tid + `","span":"` + id + `","parent":"` + id + `","name":"x"}` + "\n",
		"wall end<start": `{"schema":"pilotrf-spans/v1"}` + "\n" + `{"trace":"` + tid + `","span":"` + id + `","name":"x","wall":{"start_unix_ns":5,"end_unix_ns":1}}` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadSpans(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ReadSpans accepted malformed input", name)
		}
	}
	// Blank lines are tolerated.
	got, err := ReadSpans(strings.NewReader(`{"schema":"pilotrf-spans/v1"}` + "\n\n" + okSpan + "\n\n"))
	if err != nil || len(got) != 1 {
		t.Fatalf("blank-line input: %v, %d spans", err, len(got))
	}
}

func TestBuildTreeRejects(t *testing.T) {
	tid := TraceID("bt")
	mk := func(id, parent, name string) Span {
		return Span{Trace: tid, ID: SpanID(id), Parent: parent, Name: name}
	}
	root := mk("r", "", "root")
	cases := map[string][]Span{
		"empty":          {},
		"no root":        {mk("a", SpanID("ghost"), "x"), mk("ghost2", SpanID("a"), "y")},
		"two roots":      {root, mk("r2", "", "root2")},
		"orphan parent":  {root, mk("a", SpanID("ghost"), "x")},
		"duplicate id":   {root, mk("r", SpanID("r"), "dup")},
		"mixed trace id": {root, {Trace: TraceID("other"), ID: SpanID("o"), Parent: SpanID("r"), Name: "x"}},
	}
	for name, spans := range cases {
		if _, err := BuildTree(spans); err == nil {
			t.Errorf("%s: BuildTree accepted invalid set", name)
		}
	}
	// Cycle detached from the root.
	a := mk("a", "", "a")
	b := mk("b", "", "b")
	b.Parent = SpanID("c")
	c := mk("c", "", "c")
	c.Parent = SpanID("b")
	if _, err := BuildTree([]Span{a, b, c}); err == nil {
		t.Error("cycle: BuildTree accepted unreachable spans")
	}
	// Child wall outside parent.
	p := mk("p", "", "p")
	p.Wall = &Wall{StartUnixNS: 100, EndUnixNS: 200}
	ch := mk("ch", SpanID("p"), "ch")
	ch.Parent = p.ID
	ch.Wall = &Wall{StartUnixNS: 50, EndUnixNS: 150}
	if _, err := BuildTree([]Span{p, ch}); err == nil {
		t.Error("wall containment violation accepted")
	}
}

func TestWritePerfettoGrammar(t *testing.T) {
	rec := NewRecorder(true)
	root := rec.Root("job", TraceID("pf"), "job-1")
	c := root.Context().Start("campaign")
	for i, name := range []string{"golden", "cell", "trial"} {
		sp := c.Context().Start(name, strings.Repeat("x", i+1))
		sp.SetAttr("i", name)
		sp.End()
	}
	c.End()
	root.End()

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, rec.Spans()); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	// Same grammar check shape the sim trace_event tests use.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("perfetto output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 6 { // 5 spans + process_name metadata
		t.Fatalf("got %d events, want 6", len(doc.TraceEvents))
	}
	lastTS := int64(-1)
	sawMeta := false
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			sawMeta = true
			continue
		case "X":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.Name == "" || e.Dur < 1 || e.TS < lastTS {
			t.Fatalf("malformed event %+v (lastTS %d)", e, lastTS)
		}
		lastTS = e.TS
		if e.Args["span"] == "" {
			t.Fatalf("event missing span arg: %+v", e)
		}
	}
	if !sawMeta {
		t.Fatal("missing process_name metadata event")
	}

	// Spans without wall sections place synthetically and still parse.
	var buf2 bytes.Buffer
	if err := WritePerfetto(&buf2, StripWall(rec.Spans())); err != nil {
		t.Fatalf("WritePerfetto(no wall): %v", err)
	}
	if err := json.Unmarshal(buf2.Bytes(), &doc); err != nil {
		t.Fatalf("synthetic perfetto not valid JSON: %v", err)
	}
}

func TestSortSpansDeterministicAcrossInputOrder(t *testing.T) {
	rec := NewRecorder(false)
	root := rec.Root("r", TraceID("so"))
	for _, n := range []string{"b", "a", "c"} {
		sp := root.Context().Start("child", n)
		sp.SetAttr("n", n)
		sp.End()
	}
	root.End()
	spans := rec.Spans()
	// Reverse and re-sort: canonical order must match.
	rev := make([]Span, len(spans))
	for i := range spans {
		rev[len(spans)-1-i] = spans[i]
	}
	SortSpans(rev)
	for i := range spans {
		if spans[i].ID != rev[i].ID {
			t.Fatalf("order differs at %d: %s vs %s", i, spans[i].ID, rev[i].ID)
		}
	}
}
