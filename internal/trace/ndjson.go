package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// header is the first NDJSON line, carrying only the schema tag.
type header struct {
	Schema string `json:"schema"`
}

// WriteSpans writes spans as pilotrf-spans/v1 NDJSON: a schema header
// line followed by one span per line. Spans are written in the order
// given; pass Recorder.Spans (canonical order) for reproducible bytes.
func WriteSpans(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(header{Schema: Schema}); err != nil {
		return err
	}
	for i := range spans {
		if err := spans[i].validate(); err != nil {
			return fmt.Errorf("trace: span %d: %w", i, err)
		}
		if err := enc.Encode(&spans[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSpansFile writes spans to path, creating or truncating it.
func WriteSpansFile(path string, spans []Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteSpans(f, spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadSpans parses pilotrf-spans/v1 NDJSON, validating the schema
// header and every span (well-formed hex ids, nonempty name, wall
// end >= start). It returns a structured error — never panics — on
// malformed input, and tolerates blank lines.
func ReadSpans(r io.Reader) ([]Span, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	sawHeader := false
	var spans []Span
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		if !sawHeader {
			var h header
			if err := json.Unmarshal(raw, &h); err != nil {
				return nil, fmt.Errorf("trace: line %d: bad header: %w", line, err)
			}
			if h.Schema != Schema {
				return nil, fmt.Errorf("trace: line %d: schema %q, want %q", line, h.Schema, Schema)
			}
			sawHeader = true
			continue
		}
		var s Span
		if err := json.Unmarshal(raw, &s); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := s.validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		spans = append(spans, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: read: %w", err)
	}
	if !sawHeader {
		return nil, fmt.Errorf("trace: missing %s header", Schema)
	}
	return spans, nil
}

// ReadSpansFile reads and validates a span NDJSON file.
func ReadSpansFile(path string) ([]Span, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpans(f)
}

// validate checks structural invariants of a single span.
func (s *Span) validate() error {
	if !ValidTraceID(s.Trace) {
		return fmt.Errorf("invalid trace id %q", s.Trace)
	}
	if !ValidSpanID(s.ID) {
		return fmt.Errorf("invalid span id %q", s.ID)
	}
	if s.Parent != "" && !ValidSpanID(s.Parent) {
		return fmt.Errorf("invalid parent id %q", s.Parent)
	}
	if s.ID == s.Parent {
		return fmt.Errorf("span %s is its own parent", s.ID)
	}
	if s.Name == "" {
		return fmt.Errorf("span %s has empty name", s.ID)
	}
	if s.Wall != nil && s.Wall.EndUnixNS < s.Wall.StartUnixNS {
		return fmt.Errorf("span %s wall end %d before start %d", s.ID, s.Wall.EndUnixNS, s.Wall.StartUnixNS)
	}
	return nil
}

// SortSpans orders spans canonically: a depth-first walk with parents
// before children and siblings ordered by (name, id). Spans whose
// parent is absent from the set (or that form a cycle) are appended
// after the reachable tree, ordered by (name, id), so the function is
// total over arbitrary input. The input slice is sorted in place and
// returned.
func SortSpans(spans []Span) []Span {
	if len(spans) <= 1 {
		return spans
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Name != spans[j].Name {
			return spans[i].Name < spans[j].Name
		}
		return spans[i].ID < spans[j].ID
	})
	byID := make(map[string]int, len(spans))
	children := make(map[string][]int, len(spans))
	var roots []int
	for i := range spans {
		byID[spans[i].ID] = i
	}
	for i := range spans {
		p := spans[i].Parent
		if _, ok := byID[p]; p != "" && ok {
			children[p] = append(children[p], i)
		} else {
			roots = append(roots, i)
		}
	}
	out := make([]Span, 0, len(spans))
	seen := make([]bool, len(spans))
	var walk func(i int)
	walk = func(i int) {
		if seen[i] {
			return
		}
		seen[i] = true
		out = append(out, spans[i])
		for _, c := range children[spans[i].ID] {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	for i := range spans { // unreachable members of cycles
		if !seen[i] {
			out = append(out, spans[i])
		}
	}
	copy(spans, out)
	return spans
}
