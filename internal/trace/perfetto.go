package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// perfettoPID is the synthetic process id span lanes render under in
// ui.perfetto.dev — chosen well above the per-SM pids the sim
// package's PerfettoTracer emits so span waterfalls and pipeline
// traces can be viewed side by side without colliding.
const perfettoPID = 4096

// perfettoEvent mirrors the trace_event JSON objects the sim exporter
// writes (the envelope and field set the existing grammar checks
// accept).
type perfettoEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WritePerfetto converts spans to a Chrome trace_event JSON document
// ({"traceEvents":[...]}, "X" complete events), the same envelope the
// sim package's PerfettoTracer produces, so the output opens directly
// in ui.perfetto.dev. Spans with wall sections are placed at their
// wall-clock microseconds (rebased to the earliest start); spans
// without are laid out synthetically in canonical order. Overlapping
// spans are assigned to separate lanes (tids) greedily.
func WritePerfetto(w io.Writer, spans []Span) error {
	spans = SortSpans(append([]Span(nil), spans...))
	var base int64 = -1
	for i := range spans {
		if spans[i].Wall != nil && (base < 0 || spans[i].Wall.StartUnixNS < base) {
			base = spans[i].Wall.StartUnixNS
		}
	}
	type placed struct {
		idx     int
		ts, dur int64
	}
	ev := make([]placed, len(spans))
	for i := range spans {
		if spans[i].Wall != nil && base >= 0 {
			ts := (spans[i].Wall.StartUnixNS - base) / 1000
			dur := (spans[i].Wall.EndUnixNS - spans[i].Wall.StartUnixNS) / 1000
			if dur < 1 {
				dur = 1
			}
			ev[i] = placed{idx: i, ts: ts, dur: dur}
		} else {
			// Synthetic placement: canonical order, unit durations.
			ev[i] = placed{idx: i, ts: int64(2 * i), dur: 1}
		}
	}
	sort.SliceStable(ev, func(a, b int) bool { return ev[a].ts < ev[b].ts })
	// Greedy lane assignment: first lane whose last event has ended.
	var laneEnd []int64
	events := make([]perfettoEvent, 0, len(spans)+1)
	events = append(events, perfettoEvent{
		Name: "process_name", Ph: "M", PID: perfettoPID,
		Args: map[string]any{"name": "pilotrf spans"},
	})
	for _, p := range ev {
		lane := -1
		for l, end := range laneEnd {
			if end <= p.ts {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = p.ts + p.dur
		s := &spans[p.idx]
		args := map[string]any{
			"trace":  s.Trace,
			"span":   s.ID,
			"parent": s.Parent,
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		if s.Wall != nil {
			for k, v := range s.Wall.Attrs {
				args["wall_"+k] = v
			}
		}
		events = append(events, perfettoEvent{
			Name: s.Name, Ph: "X", TS: p.ts, Dur: p.dur,
			PID: perfettoPID, TID: lane, Args: args,
		})
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			return fmt.Errorf("trace: perfetto marshal: %w", err)
		}
		if i > 0 {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
