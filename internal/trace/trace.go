// Package trace is the repository's causal observability layer: spans
// connecting an HTTP batch request (or a CLI invocation) to the
// campaign cells, pool tasks, and individual simulated trials it fans
// out into.
//
// The design constraint — inherited from every observer before it
// (telemetry, flightrec, perfscope) and load-bearing for the planned
// multi-node campaign fabric — is that the span *tree* is
// deterministic: span and trace IDs derive from content (the jobs
// cache-key preimages, submission indices, spec fingerprints), never
// from wall clock or randomness, so the same campaign produces an
// identical tree of IDs, parentage, and annotations whether the pool
// runs one worker or sixty-four, on this machine or a future remote
// worker node. Everything nondeterministic — timestamps, queue waits,
// which worker ran a task, steal origins — lives in a clearly-marked
// optional Wall section, exactly like perfscope's wall split, and is
// excluded from the reproducibility contract.
//
// Spans are exported three ways:
//
//   - pilotrf-spans/v1 NDJSON (WriteSpans / ReadSpans, the reader
//     validating IDs and intervals and never panicking on garbage),
//   - Chrome trace_event JSON (WritePerfetto), the same envelope the
//     sim package's PerfettoTracer writes, so span waterfalls open in
//     ui.perfetto.dev next to SM pipeline traces,
//   - the pilotserve GET /v1/jobs/{id}/trace endpoint, which serves a
//     validated tree per job.
//
// Recording is nil-guarded end to end: a zero SpanContext (no recorder
// in the context) makes every hook a no-op branch, so the disabled
// pool/campaign hot path allocates nothing and produces bit-identical
// output — both test-asserted.
package trace

import (
	"fmt"
	"time"
)

// Schema identifies the span NDJSON format; bump on incompatible
// change.
const Schema = "pilotrf-spans/v1"

// Wall is the nondeterministic section of a span: wall-clock interval
// plus free-form annotations that depend on scheduling (worker id,
// steal origin, queue wait). It is excluded from the deterministic
// span-tree contract; StripWall removes it for reproducibility
// comparisons.
type Wall struct {
	// StartUnixNS and EndUnixNS bound the span in Unix nanoseconds.
	StartUnixNS int64 `json:"start_unix_ns"`
	EndUnixNS   int64 `json:"end_unix_ns"`
	// Attrs carries nondeterministic annotations (e.g. "worker",
	// "stolen_from", "queue_ns").
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Span is one completed node of a trace tree.
type Span struct {
	// Trace is the 32-hex-digit trace id every span of one tree shares
	// (W3C trace-id shaped, so it propagates through traceparent).
	Trace string `json:"trace"`
	// ID is the 16-hex-digit span id, derived deterministically from
	// the parent id and content parts.
	ID string `json:"span"`
	// Parent is the parent span's id; empty marks the tree root.
	Parent string `json:"parent,omitempty"`
	// Name labels the operation ("job", "campaign", "golden", "cell",
	// "trial", "pool.task", ...).
	Name string `json:"name"`
	// Attrs carries deterministic annotations (design, workload,
	// protection scheme, trial outcome, cache hit/miss).
	Attrs map[string]string `json:"attrs,omitempty"`
	// Wall is the optional nondeterministic section.
	Wall *Wall `json:"wall,omitempty"`
}

// FNV-1a 64-bit parameters (matching internal/jobs cache keys).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
	// fnvAltSeed seeds the second hash of a 128-bit trace id; any
	// constant different from fnvOffset works, this one is the 64-bit
	// golden ratio used as a mixer.
	fnvAltSeed = fnvOffset ^ 0x9E3779B97F4A7C15
)

// fnvParts hashes the parts with NUL separators so distinct part lists
// never collide textually.
func fnvParts(seed uint64, parts []string) uint64 {
	h := seed
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= fnvPrime
		}
		h ^= 0x1F // separator byte outside the flag-derived alphabet
		h *= fnvPrime
	}
	if h == 0 {
		h = 1 // all-zero ids are invalid in W3C trace context
	}
	return h
}

// TraceID derives a deterministic 32-hex-digit trace id from content
// parts: equal parts always produce the same id, and the id is valid as
// a W3C traceparent trace-id (lowercase hex, never all zero).
func TraceID(parts ...string) string {
	return fmt.Sprintf("%016x%016x", fnvParts(fnvOffset, parts), fnvParts(fnvAltSeed, parts))
}

// SpanID derives a deterministic 16-hex-digit span id from content
// parts (conventionally the parent span id, the span name, and any
// disambiguators such as a submission index or a cache-key hex).
func SpanID(parts ...string) string {
	return fmt.Sprintf("%016x", fnvParts(fnvOffset, parts))
}

// isHexLower reports whether s is entirely lowercase hex digits.
func isHexLower(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// isZeroHex reports whether s is all '0' digits.
func isZeroHex(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] != '0' {
			return false
		}
	}
	return true
}

// ValidTraceID reports whether s is a well-formed trace id (32
// lowercase hex digits, not all zero).
func ValidTraceID(s string) bool {
	return len(s) == 32 && isHexLower(s) && !isZeroHex(s)
}

// ValidSpanID reports whether s is a well-formed span id (16 lowercase
// hex digits, not all zero).
func ValidSpanID(s string) bool {
	return len(s) == 16 && isHexLower(s) && !isZeroHex(s)
}

// ParseTraceparent parses a W3C traceparent header value
// (version-format "00-<trace-id>-<parent-id>-<flags>"), returning the
// trace and parent span ids. ok is false for anything malformed: wrong
// length, bad separators, uppercase or non-hex digits, all-zero ids, or
// the forbidden version ff.
func ParseTraceparent(h string) (traceID, spanID string, ok bool) {
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", "", false
	}
	ver := h[0:2]
	if !isHexLower(ver) || ver == "ff" {
		return "", "", false
	}
	// Per the spec, future versions may append fields after the flags;
	// an unknown version is accepted as long as the first four fields
	// parse. Version 00 must be exactly 55 characters.
	if ver == "00" && len(h) != 55 {
		return "", "", false
	}
	traceID, spanID = h[3:35], h[36:52]
	if !ValidTraceID(traceID) || !ValidSpanID(spanID) || !isHexLower(h[53:55]) {
		return "", "", false
	}
	return traceID, spanID, true
}

// FormatTraceparent renders a version-00 traceparent header value with
// the sampled flag set.
func FormatTraceparent(traceID, spanID string) string {
	return "00-" + traceID + "-" + spanID + "-01"
}

// StripWall returns a copy of the spans with every Wall section
// removed — the deterministic projection two runs of the same campaign
// must agree on byte-for-byte.
func StripWall(spans []Span) []Span {
	out := make([]Span, len(spans))
	for i, s := range spans {
		s.Wall = nil
		out[i] = s
	}
	return out
}

// nowUnixNS is the single wall-clock read; time.Now does not allocate.
func nowUnixNS() int64 { return time.Now().UnixNano() }
