package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSpans asserts the pilotrf-spans/v1 reader never panics on
// arbitrary input, and that anything it accepts survives a
// write→read→write round trip byte-identically (the canonicalization
// property the /trace endpoint and CLI exports rely on).
func FuzzReadSpans(f *testing.F) {
	tid := TraceID("fuzz")
	id := SpanID("s")
	child := SpanID(id, "c")
	f.Add(`{"schema":"pilotrf-spans/v1"}` + "\n")
	f.Add(`{"schema":"pilotrf-spans/v1"}` + "\n" +
		`{"trace":"` + tid + `","span":"` + id + `","name":"job"}` + "\n")
	f.Add(`{"schema":"pilotrf-spans/v1"}` + "\n" +
		`{"trace":"` + tid + `","span":"` + id + `","name":"job","attrs":{"k":"v"}}` + "\n" +
		`{"trace":"` + tid + `","span":"` + child + `","parent":"` + id + `","name":"cell","wall":{"start_unix_ns":1,"end_unix_ns":9,"attrs":{"worker":"0"}}}` + "\n")
	f.Add(`{"schema":"pilotrf-spans/v0"}` + "\n")
	f.Add("{nope\n")
	f.Add(`{"trace":"00","span":"x","name":""}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		spans, err := ReadSpans(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSpans(&buf, spans); err != nil {
			t.Fatalf("accepted spans failed to write: %v", err)
		}
		back, err := ReadSpans(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("rewrite unreadable: %v", err)
		}
		var buf2 bytes.Buffer
		if err := WriteSpans(&buf2, back); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("round trip not stable")
		}
	})
}
