package trace

import (
	"fmt"
	"sort"
)

// Node is one validated node of a span tree.
type Node struct {
	Span
	Children []*Node
}

// BuildTree assembles spans into a validated tree and returns its
// root. It enforces the invariants the /trace endpoint and the CI
// smoke rely on:
//
//   - at least one span, all sharing one trace id,
//   - unique span ids,
//   - exactly one root (empty Parent),
//   - every non-root parent id present in the set (no orphans),
//   - every span reachable from the root (no cycles),
//   - when both carry wall sections, a child's wall interval lies
//     within its parent's (inclusive bounds).
//
// Children are ordered canonically by (name, id).
func BuildTree(spans []Span) (*Node, error) {
	if len(spans) == 0 {
		return nil, fmt.Errorf("trace: empty span set")
	}
	byID := make(map[string]*Node, len(spans))
	var root *Node
	for i := range spans {
		s := &spans[i]
		if err := s.validate(); err != nil {
			return nil, err
		}
		if s.Trace != spans[0].Trace {
			return nil, fmt.Errorf("trace: span %s has trace %s, want %s", s.ID, s.Trace, spans[0].Trace)
		}
		if _, dup := byID[s.ID]; dup {
			return nil, fmt.Errorf("trace: duplicate span id %s", s.ID)
		}
		byID[s.ID] = &Node{Span: *s}
	}
	for id, n := range byID {
		if n.Parent == "" {
			if root != nil {
				return nil, fmt.Errorf("trace: multiple roots: %s and %s", root.ID, id)
			}
			root = n
			continue
		}
		p, ok := byID[n.Parent]
		if !ok {
			return nil, fmt.Errorf("trace: span %s has orphan parent %s", id, n.Parent)
		}
		p.Children = append(p.Children, n)
	}
	if root == nil {
		return nil, fmt.Errorf("trace: no root span")
	}
	reached := 0
	stack := []*Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		reached++
		sort.Slice(n.Children, func(i, j int) bool {
			if n.Children[i].Name != n.Children[j].Name {
				return n.Children[i].Name < n.Children[j].Name
			}
			return n.Children[i].ID < n.Children[j].ID
		})
		for _, c := range n.Children {
			if n.Wall != nil && c.Wall != nil {
				if c.Wall.StartUnixNS < n.Wall.StartUnixNS || c.Wall.EndUnixNS > n.Wall.EndUnixNS {
					return nil, fmt.Errorf("trace: span %s wall [%d,%d] outside parent %s [%d,%d]",
						c.ID, c.Wall.StartUnixNS, c.Wall.EndUnixNS, n.ID, n.Wall.StartUnixNS, n.Wall.EndUnixNS)
				}
			}
			stack = append(stack, c)
		}
	}
	if reached != len(byID) {
		return nil, fmt.Errorf("trace: %d spans unreachable from root (cycle)", len(byID)-reached)
	}
	return root, nil
}
