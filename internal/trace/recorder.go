package trace

import (
	"context"
	"sync"
)

// Recorder collects completed spans of one trace. The zero value is
// not used directly; create with NewRecorder. A nil *Recorder is a
// valid no-op sink (every method nil-guards), mirroring the nil-Cache
// convention in internal/jobs.
type Recorder struct {
	wall bool

	mu    sync.Mutex
	spans []Span
}

// NewRecorder returns an empty recorder. When wallClock is true,
// completed spans carry a Wall section (timestamps + scheduling
// annotations); when false the recorder emits only the deterministic
// fields, so two runs of the same work produce byte-identical span
// sets regardless of worker count.
func NewRecorder(wallClock bool) *Recorder {
	return &Recorder{wall: wallClock}
}

// WallClock reports whether this recorder stamps wall-clock sections.
func (r *Recorder) WallClock() bool { return r != nil && r.wall }

// add appends a completed span.
func (r *Recorder) add(s Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Len returns the number of completed spans recorded so far.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Spans returns the completed spans in canonical tree order (parents
// before children, siblings sorted by name then id — see SortSpans),
// independent of the wall-clock order workers finished them in.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]Span, len(r.spans))
	copy(out, r.spans)
	r.mu.Unlock()
	return SortSpans(out)
}

// Root opens the root span of a new trace on this recorder. traceID
// should come from TraceID (or an inbound traceparent); idParts
// disambiguate the root span id. Returns nil (a valid no-op span) when
// the recorder is nil.
func (r *Recorder) Root(name, traceID string, idParts ...string) *ActiveSpan {
	if r == nil {
		return nil
	}
	return newActive(r, traceID, "", name, idParts)
}

// Adopt returns a SpanContext pointing at a span that lives in another
// process — the fleet worker's bridge for a traceparent carried across
// the wire. Children started on the returned context parent under the
// remote span id, so when the worker's completed spans are shipped back
// and Import-ed into the coordinator's recorder, the remote subtree
// hangs under the coordinator's span exactly as if it had run locally.
// Returns the inactive zero context when the recorder is nil or either
// id is malformed, so garbage traceparents degrade to no tracing rather
// than a torn tree.
func (r *Recorder) Adopt(traceID, spanID string) SpanContext {
	if r == nil || !ValidTraceID(traceID) || !ValidSpanID(spanID) {
		return SpanContext{}
	}
	return SpanContext{rec: r, traceID: traceID, spanID: spanID}
}

// Import appends completed spans recorded elsewhere (a fleet worker's
// subtree shipped back with its result). Spans with malformed ids are
// dropped rather than poisoning the tree; parentage is not validated
// here — BuildTree remains the single consistency gate at serve time.
// Safe on a nil recorder (no-op).
func (r *Recorder) Import(spans []Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, s := range spans {
		if !ValidTraceID(s.Trace) || !ValidSpanID(s.ID) {
			continue
		}
		if s.Parent != "" && !ValidSpanID(s.Parent) {
			continue
		}
		r.spans = append(r.spans, s)
	}
	r.mu.Unlock()
}

// SpanContext identifies an open span for propagation across API
// boundaries (contexts, batches, goroutines). The zero value is
// inactive: Start on it returns nil and NewContext returns the context
// unchanged, which is what makes the disabled path zero-alloc.
type SpanContext struct {
	rec     *Recorder
	traceID string
	spanID  string
}

// Active reports whether the context belongs to a live recorder.
func (sc SpanContext) Active() bool { return sc.rec != nil }

// TraceID returns the 32-hex trace id ("" when inactive).
func (sc SpanContext) TraceID() string { return sc.traceID }

// SpanID returns the 16-hex id of the span this context points at.
func (sc SpanContext) SpanID() string { return sc.spanID }

// WallClock reports whether the owning recorder stamps wall sections —
// callers use it to skip computing wall-only annotations (queue waits)
// when they would be discarded.
func (sc SpanContext) WallClock() bool { return sc.rec != nil && sc.rec.wall }

// Start opens a child span under this context. The child's id is
// derived deterministically from the parent id, the name, and the
// extra parts (pass a submission index or cache-key hex to keep
// same-name siblings distinct). Returns nil when the context is
// inactive; all ActiveSpan methods accept a nil receiver.
func (sc SpanContext) Start(name string, idParts ...string) *ActiveSpan {
	if sc.rec == nil {
		return nil
	}
	return newActive(sc.rec, sc.traceID, sc.spanID, name, idParts)
}

// ActiveSpan is an open span being populated. It is not safe for
// concurrent mutation — each span belongs to the goroutine that
// started it — but distinct spans of one recorder may end concurrently.
// All methods are nil-safe so call sites need no disabled-path guards.
type ActiveSpan struct {
	rec   *Recorder
	span  Span
	ended bool
}

func newActive(r *Recorder, traceID, parent, name string, idParts []string) *ActiveSpan {
	parts := make([]string, 0, len(idParts)+2)
	parts = append(parts, parent, name)
	parts = append(parts, idParts...)
	a := &ActiveSpan{rec: r, span: Span{
		Trace:  traceID,
		ID:     SpanID(parts...),
		Parent: parent,
		Name:   name,
	}}
	if r.wall {
		a.span.Wall = &Wall{StartUnixNS: nowUnixNS()}
	}
	return a
}

// Context returns a SpanContext pointing at this span, for starting
// children (possibly on other goroutines). Safe on nil.
func (a *ActiveSpan) Context() SpanContext {
	if a == nil {
		return SpanContext{}
	}
	return SpanContext{rec: a.rec, traceID: a.span.Trace, spanID: a.span.ID}
}

// SetAttr records a deterministic annotation. Keys must not depend on
// scheduling; use SetWallAttr for anything nondeterministic.
func (a *ActiveSpan) SetAttr(key, value string) {
	if a == nil {
		return
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(map[string]string)
	}
	a.span.Attrs[key] = value
}

// SetWallAttr records a nondeterministic annotation (worker id, steal
// origin, queue wait). No-op when the recorder does not stamp wall
// sections, so the deterministic projection is unaffected.
func (a *ActiveSpan) SetWallAttr(key, value string) {
	if a == nil || a.span.Wall == nil {
		return
	}
	if a.span.Wall.Attrs == nil {
		a.span.Wall.Attrs = make(map[string]string)
	}
	a.span.Wall.Attrs[key] = value
}

// SetWallStart overrides the wall-clock start (Unix ns) — used when
// the operation began before the span object could be created, e.g.
// queue spans that start at admission time. No-op without a wall
// section.
func (a *ActiveSpan) SetWallStart(unixNS int64) {
	if a == nil || a.span.Wall == nil {
		return
	}
	a.span.Wall.StartUnixNS = unixNS
}

// End stamps the wall-clock end (when enabled) and commits the span to
// the recorder. Idempotent: second and later calls are no-ops, so
// deferred cleanup Ends are safe after an explicit End.
func (a *ActiveSpan) End() {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	if a.span.Wall != nil {
		a.span.Wall.EndUnixNS = nowUnixNS()
		if a.span.Wall.EndUnixNS < a.span.Wall.StartUnixNS {
			a.span.Wall.EndUnixNS = a.span.Wall.StartUnixNS
		}
	}
	a.rec.add(a.span)
}

// ctxKey is the context key for span propagation.
type ctxKey struct{}

// NewContext returns ctx carrying sc. An inactive sc returns ctx
// unchanged (no allocation), keeping the disabled path free.
func NewContext(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Active() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// FromContext extracts the span context from ctx, returning the
// inactive zero value when none is present.
func FromContext(ctx context.Context) SpanContext {
	sc, _ := ctx.Value(ctxKey{}).(SpanContext)
	return sc
}
