package asm

import (
	"fmt"
	"strings"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// Text renders a program as parseable assembly: Assemble(Text(p)) yields
// a program with identical instructions. Labels are synthesized at every
// branch target and at every non-default reconvergence point.
func Text(p *kernel.Program) string {
	labels := collectLabels(p)
	var b strings.Builder
	fmt.Fprintf(&b, ".kernel %s\n", p.Name)
	fmt.Fprintf(&b, ".regs %d\n\n", p.NumRegs)
	for pc := range p.Instrs {
		if name, ok := labels[pc]; ok {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "    %s\n", instrText(&p.Instrs[pc], labels))
	}
	// A trailing label (reconvergence at program end).
	if name, ok := labels[p.Len()]; ok {
		fmt.Fprintf(&b, "%s:\n", name)
	}
	return b.String()
}

func collectLabels(p *kernel.Program) map[int]string {
	targets := map[int]bool{}
	for pc := range p.Instrs {
		in := &p.Instrs[pc]
		if in.Op != isa.OpBRA {
			continue
		}
		targets[in.Target] = true
		if !defaultReconv(pc, in) {
			targets[in.Reconv] = true
		}
	}
	labels := make(map[int]string, len(targets))
	for pc := range targets {
		labels[pc] = fmt.Sprintf("L%d", pc)
	}
	return labels
}

// defaultReconv reports whether the branch's reconvergence point follows
// the assembler's default rule (no explicit annotation needed).
func defaultReconv(pc int, in *isa.Instruction) bool {
	if in.Target <= pc {
		return in.Reconv == pc+1
	}
	return in.Reconv == in.Target
}

func instrText(in *isa.Instruction, labels map[int]string) string {
	if in.Op != isa.OpBRA {
		// The ISA disassembly for non-branches is already parseable.
		return in.String()
	}
	var b strings.Builder
	b.WriteString(in.Guard.String())
	b.WriteString("BRA ")
	b.WriteString(labels[in.Target])
	if !defaultReconvAt(in, labels) {
		fmt.Fprintf(&b, " !reconv %s", labels[in.Reconv])
	}
	return b.String()
}

// defaultReconvAt mirrors defaultReconv but works from the rendered
// label map (the pc is recoverable from the label of the target).
func defaultReconvAt(in *isa.Instruction, labels map[int]string) bool {
	_, explicit := labels[in.Reconv]
	if !explicit {
		return true // reconv not labeled => it followed the default rule
	}
	// The reconv point is labeled; it may still equal the default. The
	// writer only adds the annotation when collectLabels marked it
	// non-default, which we cannot see here, so re-check structurally:
	// a labeled reconv equal to the target is the forward default.
	return in.Reconv == in.Target
}
