package asm

import (
	"strings"

	"pilotrf/internal/isa"
)

// applyOperands fills the instruction's operand slots according to the
// opcode's assembly shape.
func (p *parser) applyOperands(line int, in *isa.Instruction, op isa.Op, ops []string) error {
	want := func(n int) error {
		if len(ops) != n {
			return errf(line, "%s wants %d operands, got %d", op, n, len(ops))
		}
		return nil
	}
	reg := func(s string) (isa.Reg, error) {
		r, err := parseReg(s)
		if err != nil {
			return 0, errf(line, "%v", err)
		}
		return r, nil
	}
	imm := func(s string) (int32, error) {
		v, err := parseImm(s)
		if err != nil {
			return 0, errf(line, "%v", err)
		}
		return v, nil
	}

	var err error
	switch op {
	case isa.OpNOP, isa.OpEXIT, isa.OpBAR:
		return want(0)

	case isa.OpMOV, isa.OpFRCP, isa.OpFSQRT, isa.OpFEXP:
		if err = want(2); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		in.SrcA, err = reg(ops[1])
		return err

	case isa.OpMOVI:
		if err = want(2); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		in.Imm, err = imm(ops[1])
		return err

	case isa.OpS2R:
		if err = want(2); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		sp, err := parseSpecial(ops[1])
		if err != nil {
			return errf(line, "%v", err)
		}
		in.Special = sp
		return nil

	case isa.OpIADD, isa.OpISUB, isa.OpIMUL, isa.OpAND, isa.OpOR, isa.OpXOR,
		isa.OpIMIN, isa.OpIMAX, isa.OpFADD, isa.OpFMUL, isa.OpSHFL:
		if err = want(3); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		if in.SrcA, err = reg(ops[1]); err != nil {
			return err
		}
		in.SrcB, err = reg(ops[2])
		return err

	case isa.OpIADDI, isa.OpIMULI, isa.OpANDI, isa.OpSHLI, isa.OpSHRI:
		if err = want(3); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		if in.SrcA, err = reg(ops[1]); err != nil {
			return err
		}
		in.Imm, err = imm(ops[2])
		return err

	case isa.OpIMAD, isa.OpFFMA:
		if err = want(4); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		if in.SrcA, err = reg(ops[1]); err != nil {
			return err
		}
		if in.SrcB, err = reg(ops[2]); err != nil {
			return err
		}
		in.SrcC, err = reg(ops[3])
		return err

	case isa.OpSEL:
		if err = want(4); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		if in.SrcA, err = reg(ops[1]); err != nil {
			return err
		}
		if in.SrcB, err = reg(ops[2]); err != nil {
			return err
		}
		pr, perr := parsePred(ops[3])
		if perr != nil {
			return errf(line, "%v", perr)
		}
		in.SrcPred = pr
		return nil

	case isa.OpSETP:
		if err = want(3); err != nil {
			return err
		}
		pr, perr := parsePred(ops[0])
		if perr != nil {
			return errf(line, "%v", perr)
		}
		in.PDst = pr
		if in.SrcA, err = reg(ops[1]); err != nil {
			return err
		}
		in.SrcB, err = reg(ops[2])
		return err

	case isa.OpSETPI:
		if err = want(3); err != nil {
			return err
		}
		pr, perr := parsePred(ops[0])
		if perr != nil {
			return errf(line, "%v", perr)
		}
		in.PDst = pr
		if in.SrcA, err = reg(ops[1]); err != nil {
			return err
		}
		in.Imm, err = imm(ops[2])
		return err

	case isa.OpLDG, isa.OpLDS:
		if err = want(2); err != nil {
			return err
		}
		if in.Dst, err = reg(ops[0]); err != nil {
			return err
		}
		addr, off, merr := parseMem(ops[1])
		if merr != nil {
			return errf(line, "%v", merr)
		}
		in.SrcA, in.Imm = addr, off
		return nil

	case isa.OpSTG, isa.OpSTS:
		if err = want(2); err != nil {
			return err
		}
		addr, off, merr := parseMem(ops[0])
		if merr != nil {
			return errf(line, "%v", merr)
		}
		in.SrcA, in.Imm = addr, off
		in.SrcB, err = reg(ops[1])
		return err

	case isa.OpBRA:
		// "BRA target" or "BRA target !reconv label".
		if len(ops) == 0 || len(ops) > 1 {
			// A single operand possibly containing "!reconv".
			if len(ops) != 1 {
				return errf(line, "BRA wants a target label")
			}
		}
		fields := strings.Fields(ops[0])
		pb := pendingBranch{pc: len(p.instrs), line: line}
		switch {
		case len(fields) == 1:
			pb.target = fields[0]
		case len(fields) == 3 && fields[1] == "!reconv":
			pb.target, pb.reconv = fields[0], fields[2]
		default:
			return errf(line, "bad branch syntax %q", ops[0])
		}
		if !isIdent(pb.target) || (pb.reconv != "" && !isIdent(pb.reconv)) {
			return errf(line, "bad branch labels in %q", ops[0])
		}
		p.pending = append(p.pending, pb)
		return nil

	default:
		return errf(line, "unhandled opcode %v", op)
	}
}

// resolve fixes up branch targets and reconvergence points. The default
// reconvergence rule: backward branches reconverge at their fall-through
// (loop exits wait there); forward branches reconverge at their target
// (the skip pattern).
func (p *parser) resolve() error {
	for _, pb := range p.pending {
		target, ok := p.labels[pb.target]
		if !ok {
			return errf(pb.line, "undefined label %q", pb.target)
		}
		in := &p.instrs[pb.pc]
		in.Target = target
		switch {
		case pb.reconv != "":
			rpc, ok := p.labels[pb.reconv]
			if !ok {
				return errf(pb.line, "undefined reconvergence label %q", pb.reconv)
			}
			in.Reconv = rpc
		case target <= pb.pc:
			in.Reconv = pb.pc + 1
		default:
			in.Reconv = target
		}
	}
	return nil
}
