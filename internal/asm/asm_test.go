package asm

import (
	"reflect"
	"strings"
	"testing"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
	"pilotrf/internal/ref"
	"pilotrf/internal/workloads"
)

const demoSrc = `
.kernel demo
.regs 12

# accumulate loaded values
    S2R   R0, SR_TID
    SHLI  R8, R0, 2
    MOVI  R4, 0
    MOVI  R1, 0
loop:
    LDS   R5, [R8+0]
    IADD  R4, R4, R5
    IADDI R8, R8, 4
    IADDI R1, R1, 1
    SETPI.LT P0, R1, 10
    @P0 BRA loop
    STG   [R0+0], R4
    EXIT
`

func TestAssembleBasic(t *testing.T) {
	p, err := Assemble(demoSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Name != "demo" || p.NumRegs != 12 {
		t.Errorf("header = %s/%d", p.Name, p.NumRegs)
	}
	if p.Len() != 12 {
		t.Fatalf("program has %d instructions, want 12", p.Len())
	}
	// The branch: backward to the loop label, default reconvergence.
	bra := p.At(9)
	if bra.Op != isa.OpBRA || bra.Target != 4 || bra.Reconv != 10 {
		t.Errorf("branch = %+v, want target 4 reconv 10", bra)
	}
	if bra.Guard.Pred != isa.P(0) || bra.Guard.Neg {
		t.Errorf("branch guard = %v", bra.Guard)
	}
	// SETPI picked up the comparison suffix.
	setp := p.At(8)
	if setp.Cmp != isa.CmpLT || setp.Imm != 10 {
		t.Errorf("SETPI = %+v", setp)
	}
	// Memory operands.
	lds := p.At(4)
	if lds.SrcA != isa.R(8) || lds.Imm != 0 || lds.Dst != isa.R(5) {
		t.Errorf("LDS = %+v", lds)
	}
}

func TestAssembledProgramRuns(t *testing.T) {
	p, err := Assemble(demoSrc)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	k := &kernel.Kernel{Prog: p, ThreadsPerCTA: 64, NumCTAs: 2}
	res, err := ref.Run(k, 1)
	if err != nil {
		t.Fatalf("ref.Run: %v", err)
	}
	// 4 warps x (4 prologue + 10x6 loop + STG + EXIT) = 4 x 66.
	if want := uint64(4 * 66); res.WarpInstrs != want {
		t.Errorf("WarpInstrs = %d, want %d", res.WarpInstrs, want)
	}
}

func TestExplicitReconv(t *testing.T) {
	src := `
.kernel fwd
.regs 4
    SETPI.LT P0, R0, 8
    @!P0 BRA then !reconv end
    MOVI R1, 1
then:
    MOVI R1, 2
end:
    EXIT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bra := p.At(1)
	if bra.Target != 3 || bra.Reconv != 4 {
		t.Errorf("branch = target %d reconv %d, want 3/4", bra.Target, bra.Reconv)
	}
}

func TestForwardBranchDefaultReconvIsTarget(t *testing.T) {
	src := `
.kernel skip
.regs 4
    SETPI.GE P1, R0, 0
    @P1 BRA end
    MOVI R1, 7
end:
    EXIT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bra := p.At(1)
	if bra.Target != 3 || bra.Reconv != 3 {
		t.Errorf("skip branch = target %d reconv %d, want 3/3", bra.Target, bra.Reconv)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"missing kernel":  ".regs 4\n EXIT",
		"missing regs":    ".kernel k\n EXIT",
		"bad mnemonic":    ".kernel k\n.regs 4\n FROB R0, R1\n EXIT",
		"bad register":    ".kernel k\n.regs 4\n MOV R0, R99\n EXIT",
		"missing label":   ".kernel k\n.regs 4\n BRA nowhere\n EXIT",
		"dup label":       ".kernel k\n.regs 4\nx:\nx:\n EXIT",
		"operand count":   ".kernel k\n.regs 4\n IADD R0, R1\n EXIT",
		"bad guard":       ".kernel k\n.regs 4\n @Q0 MOV R0, R1\n EXIT",
		"bad immediate":   ".kernel k\n.regs 4\n MOVI R0, xyz\n EXIT",
		"bad memory":      ".kernel k\n.regs 4\n LDG R0, R1\n EXIT",
		"over budget":     ".kernel k\n.regs 2\n MOVI R3, 1\n EXIT",
		"no exit":         ".kernel k\n.regs 4\n MOVI R0, 1",
		"bad cmp":         ".kernel k\n.regs 4\n SETPI.XX P0, R0, 1\n EXIT",
		"bad special":     ".kernel k\n.regs 4\n S2R R0, SR_BOGUS\n EXIT",
		"bad regs count":  ".kernel k\n.regs 99\n EXIT",
		"guard alone":     ".kernel k\n.regs 4\n @P0\n EXIT",
		"bad branch args": ".kernel k\n.regs 4\nx:\n BRA x y z\n EXIT",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := ".kernel k\n.regs 4\n  MOVI R0, 5 # set\n\t\n// full line\n EXIT // done\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.Len() != 2 {
		t.Errorf("program has %d instructions, want 2", p.Len())
	}
}

func TestHexAndNegativeImmediates(t *testing.T) {
	src := ".kernel k\n.regs 4\n MOVI R0, 0xFF\n MOVI R1, -7\n ANDI R2, R0, 0xFFFF\n EXIT\n"
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if p.At(0).Imm != 255 || p.At(1).Imm != -7 || p.At(2).Imm != 0xFFFF {
		t.Errorf("immediates = %d %d %d", p.At(0).Imm, p.At(1).Imm, p.At(2).Imm)
	}
}

// Text/Assemble must round-trip every bundled workload kernel exactly.
func TestRoundTripAllWorkloads(t *testing.T) {
	for _, w := range workloads.All() {
		for _, k := range w.Kernels {
			text := Text(k.Prog)
			back, err := Assemble(text)
			if err != nil {
				t.Fatalf("%s/%s: reassemble: %v\n%s", w.Name, k.Prog.Name, err, text)
			}
			if back.NumRegs != k.Prog.NumRegs || back.Len() != k.Prog.Len() {
				t.Fatalf("%s/%s: shape changed", w.Name, k.Prog.Name)
			}
			for pc := range k.Prog.Instrs {
				if !reflect.DeepEqual(k.Prog.Instrs[pc], back.Instrs[pc]) {
					t.Errorf("%s/%s pc %d:\n  orig %+v\n  back %+v",
						w.Name, k.Prog.Name, pc, k.Prog.Instrs[pc], back.Instrs[pc])
				}
			}
		}
	}
}

func TestTextIsHumanReadable(t *testing.T) {
	w, err := workloads.ByName("backprop")
	if err != nil {
		t.Fatal(err)
	}
	text := Text(w.Kernels[0].Prog)
	if !strings.Contains(text, ".kernel backprop_layerforward") {
		t.Error("missing kernel header")
	}
	if !strings.Contains(text, "BRA L") {
		t.Error("branches not labeled")
	}
}

func TestSplitOperandsBrackets(t *testing.T) {
	got := splitOperands("[R1+4], R2")
	if len(got) != 2 || got[0] != "[R1+4]" || got[1] != "R2" {
		t.Errorf("splitOperands = %q", got)
	}
	if got := splitOperands("   "); got != nil {
		t.Errorf("blank operands = %q", got)
	}
}
