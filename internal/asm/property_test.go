package asm

import (
	"reflect"
	"testing"
	"testing/quick"

	"pilotrf/internal/kerngen"
)

// Property: Text/Assemble round-trips arbitrary structured programs from
// the shared kernel generator.
func TestPropertyRoundTripRandomPrograms(t *testing.T) {
	f := func(seed uint64) bool {
		p := kerngen.Program(seed, kerngen.Options{Barriers: true})
		back, err := Assemble(Text(p))
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, Text(p))
			return false
		}
		if back.Len() != p.Len() || back.NumRegs != p.NumRegs {
			return false
		}
		for pc := range p.Instrs {
			if !reflect.DeepEqual(p.Instrs[pc], back.Instrs[pc]) {
				t.Logf("seed %d pc %d: %+v != %+v", seed, pc, p.Instrs[pc], back.Instrs[pc])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
