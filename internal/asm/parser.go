// Package asm is a textual assembler and pretty-printer for the ISA:
// kernels can be written as assembly files (labels, guards, memory
// operands) and assembled into kernel.Program values, and programs can
// be rendered back to parseable assembly. The two directions round-trip,
// which the tests enforce.
//
// Syntax:
//
//	.kernel demo          # program name
//	.regs 12              # architected registers per thread
//
//	start:
//	    S2R   R0, SR_TID
//	    MOVI  R4, 0
//	loop:
//	    LDS   R5, [R8+0]
//	    IADD  R4, R4, R5
//	    SETPI.LT P0, R1, 10
//	    @P0 BRA loop
//	    STG   [R0+0], R4
//	    EXIT
//
// Branch reconvergence points default to the fall-through instruction
// for backward branches (the loop convention) and to the target for
// forward branches (the skip convention); an explicit point is written
// as "@P0 BRA target !reconv label".
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// Error is a parse error with a line number.
type Error struct {
	Line int
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...interface{}) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// pendingBranch records a branch awaiting label resolution.
type pendingBranch struct {
	pc     int
	line   int
	target string
	reconv string // empty = default rule
}

type parser struct {
	name    string
	regs    int
	instrs  []isa.Instruction
	labels  map[string]int
	pending []pendingBranch
}

// Assemble parses assembly text into a validated program.
func Assemble(src string) (*kernel.Program, error) {
	p := &parser{labels: make(map[string]int)}
	for i, raw := range strings.Split(src, "\n") {
		line := i + 1
		text := stripComment(raw)
		if text == "" {
			continue
		}
		if err := p.parseLine(line, text); err != nil {
			return nil, err
		}
	}
	if p.name == "" {
		return nil, errf(0, "missing .kernel directive")
	}
	if p.regs == 0 {
		return nil, errf(0, "missing .regs directive")
	}
	if err := p.resolve(); err != nil {
		return nil, err
	}
	prog := &kernel.Program{Name: p.name, NumRegs: p.regs, Instrs: p.instrs}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return prog, nil
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, "#"); i >= 0 {
		s = s[:i]
	}
	if i := strings.Index(s, "//"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

func (p *parser) parseLine(line int, text string) error {
	switch {
	case strings.HasPrefix(text, ".kernel"):
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return errf(line, ".kernel wants exactly one name")
		}
		p.name = fields[1]
		return nil
	case strings.HasPrefix(text, ".regs"):
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return errf(line, ".regs wants exactly one count")
		}
		n, err := strconv.Atoi(fields[1])
		if err != nil || n <= 0 || n > isa.MaxRegs {
			return errf(line, "bad register count %q", fields[1])
		}
		p.regs = n
		return nil
	case strings.HasSuffix(text, ":"):
		label := strings.TrimSuffix(text, ":")
		if !isIdent(label) {
			return errf(line, "bad label %q", label)
		}
		if _, dup := p.labels[label]; dup {
			return errf(line, "label %q defined twice", label)
		}
		p.labels[label] = len(p.instrs)
		return nil
	default:
		return p.parseInstr(line, text)
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		digit := r >= '0' && r <= '9'
		if !alpha && !(digit && i > 0) {
			return false
		}
	}
	return true
}

// blank returns an instruction template with all operand slots cleared.
func blank(op isa.Op) isa.Instruction {
	return isa.Instruction{
		Op:      op,
		Dst:     isa.RegNone,
		SrcA:    isa.RegNone,
		SrcB:    isa.RegNone,
		SrcC:    isa.RegNone,
		PDst:    isa.PredNone,
		SrcPred: isa.PredNone,
	}
}

func (p *parser) parseInstr(line int, text string) error {
	guard := isa.GuardAlways
	if strings.HasPrefix(text, "@") {
		sp := strings.IndexAny(text, " \t")
		if sp < 0 {
			return errf(line, "guard without an instruction")
		}
		g, err := parseGuard(text[:sp])
		if err != nil {
			return errf(line, "%v", err)
		}
		guard = g
		text = strings.TrimSpace(text[sp:])
	}

	sp := strings.IndexAny(text, " \t")
	mnemonic := text
	rest := ""
	if sp >= 0 {
		mnemonic, rest = text[:sp], strings.TrimSpace(text[sp:])
	}
	cmp := isa.CmpOp(0)
	hasCmp := false
	if dot := strings.Index(mnemonic, "."); dot >= 0 {
		c, err := parseCmp(mnemonic[dot+1:])
		if err != nil {
			return errf(line, "%v", err)
		}
		cmp, hasCmp = c, true
		mnemonic = mnemonic[:dot]
	}
	op, ok := opByName(mnemonic)
	if !ok {
		return errf(line, "unknown mnemonic %q", mnemonic)
	}
	in := blank(op)
	in.Guard = guard
	if hasCmp {
		in.Cmp = cmp
	}

	ops := splitOperands(rest)
	if err := p.applyOperands(line, &in, op, ops); err != nil {
		return err
	}
	p.instrs = append(p.instrs, in)
	return nil
}

// splitOperands splits on commas outside brackets.
func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i, r := range s {
		switch r {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func parseGuard(s string) (isa.Guard, error) {
	body := strings.TrimPrefix(s, "@")
	neg := strings.HasPrefix(body, "!")
	body = strings.TrimPrefix(body, "!")
	pr, err := parsePred(body)
	if err != nil {
		return isa.Guard{}, err
	}
	return isa.Guard{Pred: pr, Neg: neg}, nil
}

func parsePred(s string) (isa.Pred, error) {
	if s == "PT" {
		return isa.PT, nil
	}
	if strings.HasPrefix(s, "P") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.NumPreds {
			return isa.Pred(n), nil
		}
	}
	return 0, fmt.Errorf("bad predicate %q", s)
}

func parseReg(s string) (isa.Reg, error) {
	if s == "RZ" {
		return isa.RZ, nil
	}
	if strings.HasPrefix(s, "R") {
		if n, err := strconv.Atoi(s[1:]); err == nil && n >= 0 && n < isa.MaxRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseMem parses "[Rn+imm]" or "[Rn]".
func parseMem(s string) (isa.Reg, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	body := s[1 : len(s)-1]
	regPart, immPart := body, ""
	if i := strings.IndexAny(body, "+-"); i > 0 {
		regPart, immPart = body[:i], body[i:]
	}
	r, err := parseReg(strings.TrimSpace(regPart))
	if err != nil {
		return 0, 0, err
	}
	var imm int32
	if immPart != "" {
		imm, err = parseImm(strings.TrimSpace(immPart))
		if err != nil {
			return 0, 0, err
		}
	}
	return r, imm, nil
}

func parseSpecial(s string) (isa.Special, error) {
	for _, sp := range []isa.Special{isa.SRTid, isa.SRCTAid, isa.SRNTid, isa.SRNCTAid, isa.SRLane, isa.SRWarpID} {
		if sp.String() == s {
			return sp, nil
		}
	}
	return 0, fmt.Errorf("bad special register %q", s)
}

func parseCmp(s string) (isa.CmpOp, error) {
	for _, c := range []isa.CmpOp{isa.CmpEQ, isa.CmpNE, isa.CmpLT, isa.CmpLE, isa.CmpGT, isa.CmpGE} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("bad comparison %q", s)
}

func opByName(name string) (isa.Op, bool) { return isa.OpByName(name) }
