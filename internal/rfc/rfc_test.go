package rfc

import (
	"testing"
	"testing/quick"

	"pilotrf/internal/isa"
)

func newCache(t *testing.T, entries, warps int, policy ReplacePolicy) *Cache {
	t.Helper()
	return New(Config{EntriesPerWarp: entries, Warps: warps, Policy: policy, AllocateOnReadMiss: true})
}

func TestReadMissThenHit(t *testing.T) {
	c := newCache(t, 2, 1, FIFO)
	if c.Read(0, isa.R(5)) {
		t.Fatal("cold read hit")
	}
	if !c.Read(0, isa.R(5)) {
		t.Fatal("second read missed (allocate-on-miss broken)")
	}
	st := c.Stats()
	if st.ReadHits != 1 || st.ReadMiss != 1 || st.Fills != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestNoAllocateOnReadMiss(t *testing.T) {
	c := New(Config{EntriesPerWarp: 2, Warps: 1, Policy: FIFO, AllocateOnReadMiss: false})
	c.Read(0, isa.R(5))
	if c.Read(0, isa.R(5)) {
		t.Fatal("hit despite no-allocate policy")
	}
	if c.Stats().Fills != 0 {
		t.Error("fills counted without allocation")
	}
}

func TestWriteAllocatesDirty(t *testing.T) {
	c := newCache(t, 2, 1, FIFO)
	c.Write(0, isa.R(3))
	if !c.Contains(0, isa.R(3)) {
		t.Fatal("write did not allocate")
	}
	if !c.Read(0, isa.R(3)) {
		t.Fatal("read after write missed")
	}
	// Flushing must write the dirty value back.
	if wb := c.FlushWarp(0); len(wb) != 1 || wb[0] != isa.R(3) {
		t.Errorf("flush wrote back %v, want [R3]", wb)
	}
}

func TestFIFOEvictionOrder(t *testing.T) {
	c := newCache(t, 2, 1, FIFO)
	c.Write(0, isa.R(1)) // oldest
	c.Write(0, isa.R(2))
	c.Read(0, isa.R(1)) // FIFO: touching R1 does not refresh it
	c.Write(0, isa.R(3))
	if c.Contains(0, isa.R(1)) {
		t.Error("FIFO should have evicted the oldest entry (R1)")
	}
	if !c.Contains(0, isa.R(2)) || !c.Contains(0, isa.R(3)) {
		t.Error("wrong entries evicted")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	c := newCache(t, 2, 1, LRU)
	c.Write(0, isa.R(1))
	c.Write(0, isa.R(2))
	c.Read(0, isa.R(1)) // LRU: R1 is now most recent
	c.Write(0, isa.R(3))
	if !c.Contains(0, isa.R(1)) {
		t.Error("LRU evicted the recently used entry")
	}
	if c.Contains(0, isa.R(2)) {
		t.Error("LRU kept the least recently used entry")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := newCache(t, 1, 1, FIFO)
	c.Write(0, isa.R(1)) // dirty
	c.Write(0, isa.R(2)) // evicts dirty R1
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyWB != 1 {
		t.Errorf("stats = %+v, want 1 eviction and 1 dirty writeback", st)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := newCache(t, 1, 1, FIFO)
	c.Read(0, isa.R(1))  // fill, clean
	c.Write(0, isa.R(2)) // evicts clean R1
	st := c.Stats()
	if st.Evictions != 1 || st.DirtyWB != 0 {
		t.Errorf("stats = %+v, want eviction without writeback", st)
	}
}

func TestRewriteSameRegisterNoEviction(t *testing.T) {
	c := newCache(t, 2, 1, FIFO)
	c.Write(0, isa.R(1))
	c.Write(0, isa.R(1))
	c.Write(0, isa.R(1))
	if got := c.Stats().Evictions; got != 0 {
		t.Errorf("evictions = %d, want 0", got)
	}
	if got := c.ValidEntries(0); got != 1 {
		t.Errorf("valid entries = %d, want 1", got)
	}
}

func TestWarpsIsolated(t *testing.T) {
	c := newCache(t, 2, 2, FIFO)
	c.Write(0, isa.R(1))
	if c.Contains(1, isa.R(1)) {
		t.Error("warp 1 sees warp 0's entry")
	}
	if c.Read(1, isa.R(1)) {
		t.Error("cross-warp hit")
	}
}

func TestFlushInvalidatesAll(t *testing.T) {
	c := newCache(t, 4, 1, FIFO)
	c.Write(0, isa.R(1))
	c.Read(0, isa.R(2))
	wb := c.FlushWarp(0)
	if len(wb) != 1 || wb[0] != isa.R(1) {
		t.Errorf("flush writebacks = %v, want [R1] (only the dirty entry)", wb)
	}
	if c.ValidEntries(0) != 0 {
		t.Error("entries survived flush")
	}
	if c.Stats().Flushes != 1 {
		t.Error("flush not counted")
	}
}

func TestTagChecksCounted(t *testing.T) {
	c := newCache(t, 2, 1, FIFO)
	c.Read(0, isa.R(1))
	c.Write(0, isa.R(2))
	c.Read(0, isa.R(2))
	if got := c.Stats().TagChecks; got != 3 {
		t.Errorf("tag checks = %d, want 3", got)
	}
}

func TestHitRate(t *testing.T) {
	c := newCache(t, 4, 1, FIFO)
	c.Write(0, isa.R(1))
	c.Read(0, isa.R(1)) // hit
	c.Read(0, isa.R(2)) // miss
	if got := c.Stats().HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g, want 0.5", got)
	}
	if (Stats{}).HitRate() != 0 {
		t.Error("empty hit rate should be 0")
	}
}

func TestMRFTrafficAccessors(t *testing.T) {
	c := newCache(t, 1, 1, FIFO)
	c.Read(0, isa.R(1))  // miss -> MRF read
	c.Write(0, isa.R(2)) // evicts clean R1
	c.Write(0, isa.R(3)) // evicts dirty R2 -> MRF write
	st := c.Stats()
	if st.MRFReads() != 1 {
		t.Errorf("MRF reads = %d, want 1", st.MRFReads())
	}
	if st.MRFWrites() != 1 {
		t.Errorf("MRF writes = %d, want 1", st.MRFWrites())
	}
}

func TestPanicsOnBadInputs(t *testing.T) {
	c := newCache(t, 2, 2, FIFO)
	cases := []func(){
		func() { c.Read(-1, isa.R(0)) },
		func() { c.Read(2, isa.R(0)) },
		func() { c.Read(0, isa.RZ) },
		func() { c.Write(0, isa.RegNone) },
		func() { New(Config{EntriesPerWarp: 0, Warps: 1}) },
		func() { New(Config{EntriesPerWarp: 1, Warps: 0}) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestResetStatsKeepsContents(t *testing.T) {
	c := newCache(t, 2, 1, FIFO)
	c.Write(0, isa.R(1))
	c.ResetStats()
	if c.Stats().Writes != 0 {
		t.Error("stats not reset")
	}
	if !c.Contains(0, isa.R(1)) {
		t.Error("contents lost on stats reset")
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(16)
	if cfg.EntriesPerWarp != 6 || cfg.Warps != 16 || cfg.Policy != FIFO || !cfg.AllocateOnReadMiss {
		t.Errorf("DefaultConfig = %+v", cfg)
	}
}

// Property: valid entries per warp never exceed the configured capacity,
// and reads after a write to the same register always hit.
func TestPropertyCapacityAndCoherence(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{EntriesPerWarp: 3, Warps: 2, Policy: FIFO, AllocateOnReadMiss: true})
		lastWrite := map[int]isa.Reg{}
		for _, op := range ops {
			warp := int(op>>1) % 2
			r := isa.Reg((op >> 2) % 16)
			if op&1 == 0 {
				c.Read(warp, r)
			} else {
				c.Write(warp, r)
				lastWrite[warp] = r
			}
			if c.ValidEntries(0) > 3 || c.ValidEntries(1) > 3 {
				return false
			}
		}
		// The most recently written register of each warp must still
		// be resident unless >=3 other registers displaced it; with
		// FIFO a just-written register can only be displaced by 3
		// subsequent installs, so check only immediately.
		for warp, r := range lastWrite {
			c.Write(warp, r)
			if !c.Contains(warp, r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "FIFO" || LRU.String() != "LRU" {
		t.Error("policy names wrong")
	}
}
