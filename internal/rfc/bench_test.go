package rfc

import (
	"testing"

	"pilotrf/internal/isa"
)

func BenchmarkReadHit(b *testing.B) {
	c := New(DefaultConfig(8))
	c.Write(0, isa.R(5))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(0, isa.R(5))
	}
}

func BenchmarkReadMissAllocate(b *testing.B) {
	c := New(DefaultConfig(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cycle through more registers than entries so every read
		// misses and allocates.
		c.Read(0, isa.Reg(i%16))
	}
}

func BenchmarkWriteEvict(b *testing.B) {
	c := New(DefaultConfig(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(0, isa.Reg(i%16))
	}
}

func BenchmarkFlushWarp(b *testing.B) {
	c := New(DefaultConfig(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < 6; r++ {
			c.Write(0, isa.Reg(r))
		}
		c.FlushWarp(0)
	}
}
