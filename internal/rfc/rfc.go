// Package rfc models the register file cache baseline (Gebhart et al.,
// ISCA 2011) the paper compares against: a small per-warp cache of
// recently produced register values in front of the MRF, managed together
// with the two-level warp scheduler (entries exist only for warps in the
// scheduler's active pool and are flushed on demotion).
//
// The cache is a pure control/bookkeeping model: the simulator keeps the
// architectural register values; this package decides hits, allocations,
// evictions, and writebacks, and counts the events the energy model
// prices.
package rfc

import (
	"fmt"

	"pilotrf/internal/isa"
)

// ReplacePolicy selects the eviction order within a warp's entries.
type ReplacePolicy uint8

// Replacement policies. The ISCA'11 design used FIFO; LRU is provided for
// sensitivity studies.
const (
	FIFO ReplacePolicy = iota
	LRU
)

// String returns the policy name.
func (p ReplacePolicy) String() string {
	if p == LRU {
		return "LRU"
	}
	return "FIFO"
}

// Config sizes the cache.
type Config struct {
	// EntriesPerWarp is the number of registers cached per warp (6 in
	// the paper's comparison).
	EntriesPerWarp int
	// Warps is the number of warp slots with RFC storage (the active
	// pool size of the two-level scheduler).
	Warps int
	// Policy is the replacement policy.
	Policy ReplacePolicy
	// AllocateOnReadMiss controls whether values fetched from the MRF
	// on a read miss are installed in the cache (the ISCA'11 design
	// installs them).
	AllocateOnReadMiss bool
	// Hints, when non-empty, switches the cache to compiler-assisted
	// allocation: only the hinted registers may hold entries; accesses
	// to any other register bypass straight to the MRF without a tag
	// probe (the compiler knows statically they are never cached).
	Hints []isa.Reg
}

// DefaultConfig returns the paper's comparison configuration for the
// given active-warp count.
func DefaultConfig(activeWarps int) Config {
	return Config{
		EntriesPerWarp:     6,
		Warps:              activeWarps,
		Policy:             FIFO,
		AllocateOnReadMiss: true,
	}
}

// Stats counts the events an RFC produces; the energy model multiplies
// them by per-event energies.
type Stats struct {
	ReadHits  uint64 // reads served by the RFC
	ReadMiss  uint64 // reads that fell through to the MRF
	Writes    uint64 // result writes (always allocate in the RFC)
	Fills     uint64 // RFC installs on read miss
	Evictions uint64 // entries displaced (any state)
	DirtyWB   uint64 // displaced or flushed dirty entries written to MRF
	TagChecks uint64 // CAM tag probes (every read and write of a cacheable register)
	Flushes   uint64 // warp flushes (two-level scheduler demotions)
	// Bypasses of the compiler-assisted mode: accesses to non-hinted
	// registers that went straight to the MRF without a tag probe.
	ReadBypass  uint64
	WriteBypass uint64
}

// Add folds another run's counters in.
func (s *Stats) Add(o Stats) {
	s.ReadHits += o.ReadHits
	s.ReadMiss += o.ReadMiss
	s.Writes += o.Writes
	s.Fills += o.Fills
	s.Evictions += o.Evictions
	s.DirtyWB += o.DirtyWB
	s.TagChecks += o.TagChecks
	s.Flushes += o.Flushes
	s.ReadBypass += o.ReadBypass
	s.WriteBypass += o.WriteBypass
}

// MRFReads returns the number of MRF read accesses induced (read misses
// and compiler-directed bypasses).
func (s Stats) MRFReads() uint64 { return s.ReadMiss + s.ReadBypass }

// MRFWrites returns the number of MRF write accesses induced (dirty
// writebacks and compiler-directed bypasses).
func (s Stats) MRFWrites() uint64 { return s.DirtyWB + s.WriteBypass }

// HitRate returns the read hit rate, or 0 with no reads.
func (s Stats) HitRate() float64 {
	total := s.ReadHits + s.ReadMiss
	if total == 0 {
		return 0
	}
	return float64(s.ReadHits) / float64(total)
}

type entry struct {
	reg   isa.Reg
	valid bool
	dirty bool
	// order is the FIFO insertion stamp or LRU last-use stamp.
	order uint64
}

// Cache is the register file cache.
type Cache struct {
	cfg   Config
	warps [][]entry
	clock uint64
	stats Stats
	// hintMask is the admitted-register bitmask when Config.Hints is
	// set; 0 admits everything (the dynamic ISCA'11 mode).
	hintMask uint64
}

// New returns an empty cache.
func New(cfg Config) *Cache {
	if cfg.EntriesPerWarp <= 0 || cfg.Warps <= 0 {
		panic(fmt.Sprintf("rfc: invalid config %+v", cfg))
	}
	c := &Cache{cfg: cfg, warps: make([][]entry, cfg.Warps)}
	for i := range c.warps {
		c.warps[i] = make([]entry, cfg.EntriesPerWarp)
	}
	for _, r := range cfg.Hints {
		if !r.Valid() {
			panic(fmt.Sprintf("rfc: hint register %s", r))
		}
		c.hintMask |= uint64(1) << uint(r)
	}
	return c
}

// Admits reports whether register r may allocate an entry: always true
// in the dynamic mode, only for hinted registers in the compiler mode.
func (c *Cache) Admits(r isa.Reg) bool {
	return c.hintMask == 0 || c.hintMask&(uint64(1)<<uint(r)) != 0
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (contents are kept).
func (c *Cache) ResetStats() { c.stats = Stats{} }

func (c *Cache) slot(warp int) []entry {
	if warp < 0 || warp >= c.cfg.Warps {
		panic(fmt.Sprintf("rfc: warp %d outside [0,%d)", warp, c.cfg.Warps))
	}
	return c.warps[warp]
}

func (c *Cache) find(es []entry, r isa.Reg) int {
	for i := range es {
		if es[i].valid && es[i].reg == r {
			return i
		}
	}
	return -1
}

// victim returns the index to (re)use: an invalid entry if one exists,
// otherwise the entry with the smallest order stamp.
func (c *Cache) victim(es []entry) int {
	best, bestOrder := -1, ^uint64(0)
	for i := range es {
		if !es[i].valid {
			return i
		}
		if es[i].order < bestOrder {
			best, bestOrder = i, es[i].order
		}
	}
	return best
}

// Read looks register r of warp up in the cache. It returns true on a
// hit. On a miss the value comes from the MRF and, if configured, is
// installed (possibly writing back a dirty victim).
func (c *Cache) Read(warp int, r isa.Reg) bool {
	if !r.Valid() {
		panic(fmt.Sprintf("rfc: read of %s", r))
	}
	if !c.Admits(r) {
		// Compiler-directed bypass: no tag probe is spent on a register
		// statically known never to be cached.
		c.stats.ReadBypass++
		return false
	}
	es := c.slot(warp)
	c.stats.TagChecks++
	c.clock++
	if i := c.find(es, r); i >= 0 {
		c.stats.ReadHits++
		if c.cfg.Policy == LRU {
			es[i].order = c.clock
		}
		return true
	}
	c.stats.ReadMiss++
	if c.cfg.AllocateOnReadMiss {
		c.install(es, r, false)
		c.stats.Fills++
	}
	return false
}

// Write records a result write to register r of warp: it always
// allocates (or updates) the register in the cache and marks it dirty;
// the MRF is only written when the entry is later displaced or flushed.
// When the allocation displaces a dirty entry, Write returns that
// register and true so the caller can issue the MRF writeback. A
// compiler-directed bypass (non-hinted register) returns r itself with
// writeback true: the result goes straight to the MRF.
func (c *Cache) Write(warp int, r isa.Reg) (victim isa.Reg, writeback bool) {
	if !r.Valid() {
		panic(fmt.Sprintf("rfc: write of %s", r))
	}
	if !c.Admits(r) {
		c.stats.WriteBypass++
		return r, true
	}
	es := c.slot(warp)
	c.stats.TagChecks++
	c.stats.Writes++
	c.clock++
	if i := c.find(es, r); i >= 0 {
		es[i].dirty = true
		if c.cfg.Policy == LRU {
			es[i].order = c.clock
		}
		return isa.RegNone, false
	}
	return c.install(es, r, true)
}

func (c *Cache) install(es []entry, r isa.Reg, dirty bool) (victim isa.Reg, writeback bool) {
	v := c.victim(es)
	victim, writeback = isa.RegNone, false
	if es[v].valid {
		c.stats.Evictions++
		if es[v].dirty {
			c.stats.DirtyWB++
			victim, writeback = es[v].reg, true
		}
	}
	es[v] = entry{reg: r, valid: true, dirty: dirty, order: c.clock}
	return victim, writeback
}

// FlushWarp writes back the warp's dirty entries and invalidates all of
// them — the two-level scheduler calls this when the warp is demoted
// from the active pool. It returns the registers written back to the MRF.
func (c *Cache) FlushWarp(warp int) []isa.Reg {
	es := c.slot(warp)
	var dirty []isa.Reg
	for i := range es {
		if es[i].valid && es[i].dirty {
			dirty = append(dirty, es[i].reg)
		}
		es[i] = entry{}
	}
	c.stats.Flushes++
	c.stats.DirtyWB += uint64(len(dirty))
	return dirty
}

// ValidEntries returns the number of valid entries for a warp (for tests
// and occupancy statistics).
func (c *Cache) ValidEntries(warp int) int {
	n := 0
	for _, e := range c.slot(warp) {
		if e.valid {
			n++
		}
	}
	return n
}

// Contains reports whether register r of warp is currently cached.
func (c *Cache) Contains(warp int, r isa.Reg) bool {
	return c.find(c.slot(warp), r) >= 0
}
