package pilotrf_test

import (
	"fmt"

	"pilotrf"
)

// ExampleNewSimulator runs one of the Table I benchmarks on the paper's
// full design point and reads the headline metrics.
func ExampleNewSimulator() {
	opts := pilotrf.PaperOptions()
	opts.SMs = 1
	opts.Scale = 0.1 // scaled-down grid for a fast example run
	sim, err := pilotrf.NewSimulator(opts)
	if err != nil {
		panic(err)
	}
	res, err := sim.RunBenchmark("srad")
	if err != nil {
		panic(err)
	}
	fmt.Printf("ran %d kernels, RF leakage %.1f mW\n", len(res.Stats.Kernels), res.Energy.LeakageMW)
	// Output: ran 2 kernels, RF leakage 20.7 mW
}

// ExampleAssemble builds a kernel from assembly text and checks its SIMT
// reconvergence points.
func ExampleAssemble() {
	prog, err := pilotrf.Assemble(`
.kernel axpy
.regs 6
    S2R   R0, SR_TID
    SHLI  R1, R0, 2
    LDG   R2, [R1+0]
    IMAD  R3, R2, R2, R3
    STG   [R1+0], R3
    EXIT
`)
	if err != nil {
		panic(err)
	}
	if err := pilotrf.CheckReconvergence(prog); err != nil {
		panic(err)
	}
	fmt.Printf("%s: %d instructions\n", prog.Name, prog.Len())
	// Output: axpy: 6 instructions
}

// ExampleNewKernelBuilder writes the same kernel with the builder API.
func ExampleNewKernelBuilder() {
	b := pilotrf.NewKernelBuilder("saxpy", 8)
	b.S2R(pilotrf.R(0), pilotrf.SRTid)
	b.SHLI(pilotrf.R(1), pilotrf.R(0), 2)
	b.CountedLoop(pilotrf.R(2), pilotrf.P(0), 16, func() {
		b.LDG(pilotrf.R(3), pilotrf.R(1), 0)
		b.FFMA(pilotrf.R(4), pilotrf.R(3), pilotrf.R(4), pilotrf.R(4))
		b.IADDI(pilotrf.R(1), pilotrf.R(1), 4)
	})
	b.STG(pilotrf.R(1), 0, pilotrf.R(4))
	b.EXIT()
	prog, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println(prog.Name, "builds OK")
	// Output: saxpy builds OK
}

// ExampleBenchmarks lists the bundled Table I workloads.
func ExampleBenchmarks() {
	names := pilotrf.Benchmarks()
	fmt.Println(len(names), "benchmarks; first:", names[0])
	// Output: 17 benchmarks; first: BFS
}
