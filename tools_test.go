package pilotrf

// Tier-1 tooling gates: gofmt cleanliness (checked in-process, no
// toolchain needed), go vet, staticcheck and govulncheck (when their
// binaries are installed), and a race-detector pass over the
// concurrency-bearing telemetry package. The exec-based checks skip
// when the environment cannot run them (no go binary, no cgo) so the
// suite stays green on minimal containers while still enforcing the
// gates wherever the toolchain exists.

import (
	"bytes"
	"go/format"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// moduleGoFiles returns every non-generated .go file in the module.
func moduleGoFiles(t *testing.T) []string {
	t.Helper()
	var files []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func TestGofmt(t *testing.T) {
	for _, path := range moduleGoFiles(t) {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Errorf("%s: %v", path, err)
			continue
		}
		if !bytes.Equal(src, formatted) {
			t.Errorf("%s is not gofmt-clean (run gofmt -w %s)", path, path)
		}
	}
}

// goTool locates the go binary, skipping the test when absent.
func goTool(t *testing.T) string {
	t.Helper()
	path, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not available")
	}
	return path
}

func TestGoVet(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command(goTool(t), "vet", "./...")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go vet ./... failed: %v\n%s", err, out)
	}
}

// TestStaticcheck runs honnef.co/go/tools staticcheck over the module
// when the binary is on PATH, skipping gracefully otherwise.
func TestStaticcheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin, err := exec.LookPath("staticcheck")
	if err != nil {
		t.Skip("staticcheck not available")
	}
	out, err := exec.Command(bin, "./...").CombinedOutput()
	if err != nil {
		t.Fatalf("staticcheck ./... failed: %v\n%s", err, out)
	}
}

// TestGovulncheck scans the module against the Go vulnerability
// database when the binary is on PATH, skipping gracefully otherwise
// (including when the database is unreachable offline).
func TestGovulncheck(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bin, err := exec.LookPath("govulncheck")
	if err != nil {
		t.Skip("govulncheck not available")
	}
	out, err := exec.Command(bin, "./...").CombinedOutput()
	if err != nil {
		if strings.Contains(string(out), "no such host") ||
			strings.Contains(string(out), "connection refused") ||
			strings.Contains(string(out), "dial tcp") {
			t.Skipf("vulnerability database unreachable: %s", out)
		}
		t.Fatalf("govulncheck ./... failed: %v\n%s", err, out)
	}
}

func TestRaceTelemetry(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command(goTool(t), "test", "-race", "-count=1", "./internal/telemetry")
	cmd.Env = append(os.Environ(), "CGO_ENABLED=1")
	out, err := cmd.CombinedOutput()
	if err != nil {
		// The race detector needs cgo; a container without a C compiler
		// is an infrastructure gap, not a code failure.
		if strings.Contains(string(out), "requires cgo") ||
			strings.Contains(string(out), "C compiler") {
			t.Skipf("race detector unavailable: %s", out)
		}
		t.Fatalf("go test -race ./internal/telemetry failed: %v\n%s", err, out)
	}
}
