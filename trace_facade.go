package pilotrf

import (
	"io"

	"pilotrf/internal/trace"
)

// The span-tracing layer: deterministic trace trees over the simulation
// service. Span and trace ids derive from campaign cache keys and
// submission indices — never wall clock or randomness — so the same
// spec records a byte-identical tree at any worker count; wall-clock
// timings ride in clearly separated nondeterministic sections. The
// pilotserve job server records one tree per job (served at
// GET /v1/jobs/{id}/trace), cmd/faultcampaign writes them via
// -trace-spans/-trace-perfetto, and this facade exposes the same
// recorder for embedded campaigns.
type (
	// Span is one recorded operation: deterministic identity and
	// attributes, plus an optional nondeterministic wall section.
	Span = trace.Span
	// SpanWall is a span's wall-clock section (timings, worker ids,
	// queue waits) — everything that may differ run to run.
	SpanWall = trace.Wall
	// SpanRecorder collects spans; safe for concurrent use.
	SpanRecorder = trace.Recorder
	// SpanContext carries an active span across goroutine and API
	// boundaries; the zero value is inert.
	SpanContext = trace.SpanContext
	// SpanNode is one node of a validated span tree.
	SpanNode = trace.Node
)

// SpanSchema identifies the span NDJSON format (pilotrf-spans/v1).
const SpanSchema = trace.Schema

// EnableSpanTracing attaches a fresh recorder to a campaign's options
// and returns it. With wallClock false the recording is fully
// deterministic — byte-identical across runs and worker counts; with
// wallClock true each span also carries a wall section with real
// timings (strippable later via StripSpanWall).
func EnableSpanTracing(opt *CampaignOptions, wallClock bool) *SpanRecorder {
	rec := trace.NewRecorder(wallClock)
	opt.Trace = rec
	return rec
}

// WriteSpans writes spans as pilotrf-spans/v1 NDJSON: a schema header
// line, then one span object per line in canonical order.
func WriteSpans(w io.Writer, spans []Span) error { return trace.WriteSpans(w, spans) }

// ReadSpans parses a pilotrf-spans/v1 NDJSON stream, validating the
// schema header and every span.
func ReadSpans(r io.Reader) ([]Span, error) { return trace.ReadSpans(r) }

// WriteSpansPerfetto converts spans to Chrome/Perfetto trace_event JSON
// loadable at ui.perfetto.dev.
func WriteSpansPerfetto(w io.Writer, spans []Span) error { return trace.WritePerfetto(w, spans) }

// BuildSpanTree validates the spans — single root, unique ids, no
// orphans, child wall intervals within their parent's — and returns the
// root of the assembled tree.
func BuildSpanTree(spans []Span) (*SpanNode, error) { return trace.BuildTree(spans) }

// StripSpanWall returns a copy of spans with every wall section
// removed: the deterministic projection of a wall-clock recording.
func StripSpanWall(spans []Span) []Span { return trace.StripWall(spans) }
