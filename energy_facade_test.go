package pilotrf

import (
	"strings"
	"testing"
)

func TestEnergyLedgerFacade(t *testing.T) {
	sim, err := NewSimulator(Options{SMs: 1, Design: DesignPartitionedAdaptive,
		Profiling: ProfileHybrid, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	led := sim.EnableEnergyLedger(0)
	audit := sim.EnableSwapAudit()

	res, err := sim.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if err := led.CheckConservation(res.Stats.PartAccesses(), res.Cycles()); err != nil {
		t.Errorf("facade ledger conservation: %v", err)
	}
	if led.DynamicPJ() != res.Energy.DynamicPJ {
		t.Errorf("ledger dynamic %v != result report %v", led.DynamicPJ(), res.Energy.DynamicPJ)
	}
	if audit.Len() == 0 {
		t.Error("audit log recorded no placements")
	}

	var sb strings.Builder
	if err := led.WriteHeatmapJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"cells"`) {
		t.Error("heatmap JSON missing cells")
	}
	sb.Reset()
	if err := audit.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "technique") {
		t.Error("audit CSV missing header")
	}
}
