package pilotrf

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pilotrf/internal/perfscope"
)

// TestPerfscopeFacade: EnablePerfscope collects a census through the
// public API, the census partitions observed cycles, profiling does not
// perturb timing, and the report round-trips through ReadPerfReport.
func TestPerfscopeFacade(t *testing.T) {
	plain := smallSim(t, 1)
	base, err := plain.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}

	s := smallSim(t, 1)
	p := s.EnablePerfscope(false)
	res, err := s.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles() != base.Cycles() {
		t.Errorf("profiling changed cycles %d -> %d", base.Cycles(), res.Cycles())
	}
	c := p.Census()
	if c.SMCycles == 0 {
		t.Fatal("profiler observed nothing")
	}
	if c.Busy+c.ActiveNoIssue+c.Skippable+c.StalledUnknown != c.SMCycles {
		t.Errorf("census classes do not partition SMCycles: %+v", c)
	}

	entry := perfscope.NewEntry("sgemm", "part-adaptive", p)
	report := perfscope.NewReport([]PerfEntry{entry})
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "perf.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPerfReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Entries) != 1 || back.Entries[0].Census != c {
		t.Errorf("report round trip lost the census: %+v", back.Entries)
	}
}
