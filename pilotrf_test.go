package pilotrf

import (
	"testing"
)

// quickOpts keeps facade tests fast: small grids, one SM.
func quickOpts(d Design, p Technique) Options {
	return Options{SMs: 1, Design: d, Profiling: p, Scale: 0.15}
}

func TestPaperOptionsSelectPaperDesign(t *testing.T) {
	s, err := NewSimulator(PaperOptions())
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if s.opts.Design != DesignPartitionedAdaptive || s.opts.Profiling != ProfileHybrid {
		t.Errorf("paper options = %v/%v, want paper design point", s.opts.Design, s.opts.Profiling)
	}
	if s.opts.SMs != 2 || s.opts.Scale != 1 || s.opts.FRFRegisters != 4 {
		t.Errorf("paper options = %+v", s.opts)
	}
}

func TestZeroOptionsAreBaseline(t *testing.T) {
	s, err := NewSimulator(Options{})
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	if s.opts.Design != DesignMonolithicSTV || s.opts.Profiling != ProfileStaticFirstN {
		t.Errorf("zero options = %v/%v, want the natural baseline", s.opts.Design, s.opts.Profiling)
	}
}

func TestBenchmarksList(t *testing.T) {
	names := Benchmarks()
	if len(names) != 17 {
		t.Fatalf("Benchmarks lists %d names, want 17", len(names))
	}
	cat, err := BenchmarkCategory("LIB")
	if err != nil || cat != 3 {
		t.Errorf("BenchmarkCategory(LIB) = %d, %v", cat, err)
	}
	if _, err := BenchmarkCategory("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunBenchmarkEndToEnd(t *testing.T) {
	s, err := NewSimulator(quickOpts(DesignPartitionedAdaptive, ProfileHybrid))
	if err != nil {
		t.Fatalf("NewSimulator: %v", err)
	}
	res, err := s.RunBenchmark("backprop")
	if err != nil {
		t.Fatalf("RunBenchmark: %v", err)
	}
	if res.Cycles() <= 0 {
		t.Error("no cycles")
	}
	if res.FRFShare() <= 0.3 {
		t.Errorf("FRF share = %.2f, want substantial", res.FRFShare())
	}
	if s := res.DynamicSavings(); s <= 0.2 || s >= 0.8 {
		t.Errorf("dynamic savings = %.2f, want meaningful", s)
	}
	if res.TopNShare(4) <= res.TopNShare(3) {
		t.Error("top-N shares not monotone")
	}
}

func TestRunBenchmarkUnknown(t *testing.T) {
	s, _ := NewSimulator(quickOpts(DesignMonolithicSTV, ProfileStaticFirstN))
	if _, err := s.RunBenchmark("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestBaselineHasNoFRF(t *testing.T) {
	s, _ := NewSimulator(quickOpts(DesignMonolithicSTV, ProfileStaticFirstN))
	res, err := s.RunBenchmark("BFS")
	if err != nil {
		t.Fatalf("RunBenchmark: %v", err)
	}
	if res.FRFShare() != 0 {
		t.Errorf("monolithic design has FRF share %.2f", res.FRFShare())
	}
	if res.DynamicSavings() > 0.01 {
		t.Errorf("baseline vs itself saves %.2f", res.DynamicSavings())
	}
}

func TestCustomKernelViaBuilder(t *testing.T) {
	b := NewKernelBuilder("custom", 8)
	b.S2R(R(0), SRTid)
	b.MOVI(R(4), 0)
	b.CountedLoop(R(1), P(0), 10, func() {
		b.IADD(R(4), R(4), R(0))
	})
	b.STG(R(0), 0, R(4))
	b.EXIT()
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	s, _ := NewSimulator(quickOpts(DesignPartitioned, ProfilePilot))
	res, err := s.RunKernels("custom", []Kernel{{Prog: prog, ThreadsPerCTA: 64, NumCTAs: 4}})
	if err != nil {
		t.Fatalf("RunKernels: %v", err)
	}
	if res.Cycles() <= 0 {
		t.Error("custom kernel did not run")
	}
}

func TestConfigEscapeHatch(t *testing.T) {
	s, _ := NewSimulator(quickOpts(DesignPartitionedAdaptive, ProfileHybrid))
	s.Config().MemLatency = 400
	res, err := s.RunBenchmark("BFS")
	if err != nil {
		t.Fatalf("RunBenchmark: %v", err)
	}
	s2, _ := NewSimulator(quickOpts(DesignPartitionedAdaptive, ProfileHybrid))
	res2, err := s2.RunBenchmark("BFS")
	if err != nil {
		t.Fatalf("RunBenchmark: %v", err)
	}
	if res.Cycles() <= res2.Cycles() {
		t.Error("doubling memory latency did not slow the run")
	}
}

func TestRunAll(t *testing.T) {
	s, _ := NewSimulator(Options{SMs: 1, Design: DesignMonolithicSTV, Profiling: ProfileStaticFirstN, Scale: 0.05})
	all, err := s.RunAll()
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	if len(all) != 17 {
		t.Fatalf("RunAll returned %d results", len(all))
	}
	for name, res := range all {
		if res.Cycles() <= 0 {
			t.Errorf("%s: no cycles", name)
		}
	}
}

func TestAssembleFacade(t *testing.T) {
	src := `
.kernel facade
.regs 6
    S2R  R0, SR_TID
    MOVI R4, 0
    IADD R4, R4, R0
    STG  [R0+0], R4
    EXIT
`
	prog, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if err := CheckReconvergence(prog); err != nil {
		t.Fatalf("CheckReconvergence: %v", err)
	}
	text := AssemblyText(prog)
	back, err := Assemble(text)
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Len() != prog.Len() {
		t.Error("round trip changed the program")
	}
	s, _ := NewSimulator(quickOpts(DesignPartitioned, ProfilePilot))
	res, err := s.RunKernels("facade", []Kernel{{Prog: prog, ThreadsPerCTA: 64, NumCTAs: 2}})
	if err != nil {
		t.Fatalf("RunKernels: %v", err)
	}
	if res.Cycles() <= 0 {
		t.Error("assembled kernel did not run")
	}
}

func TestTracerFacade(t *testing.T) {
	s, _ := NewSimulator(quickOpts(DesignPartitionedAdaptive, ProfileHybrid))
	tr := NewRingTracer(1024)
	s.Config().Tracer = tr
	if _, err := s.RunBenchmark("WP"); err != nil {
		t.Fatalf("RunBenchmark: %v", err)
	}
	if len(tr.Events()) == 0 {
		t.Error("no trace events captured through the facade")
	}
}

func TestDesignComparison(t *testing.T) {
	run := func(d Design, p Technique) Result {
		s, err := NewSimulator(quickOpts(d, p))
		if err != nil {
			t.Fatalf("NewSimulator: %v", err)
		}
		res, err := s.RunBenchmark("srad")
		if err != nil {
			t.Fatalf("RunBenchmark: %v", err)
		}
		return res
	}
	base := run(DesignMonolithicSTV, ProfileStaticFirstN)
	ntv := run(DesignMonolithicNTV, ProfileStaticFirstN)
	part := run(DesignPartitionedAdaptive, ProfileHybrid)
	if ntv.Cycles() <= base.Cycles() {
		t.Error("NTV should be slower than STV")
	}
	if part.DynamicSavings() <= 0 {
		t.Error("partitioned design should save dynamic energy")
	}
	if part.Energy.LeakageMW >= base.Energy.LeakageMW {
		t.Error("partitioned design should leak less")
	}
}
