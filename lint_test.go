package pilotrf

// A documentation-coverage gate: every exported declaration in the module
// must carry a doc comment. This keeps the public API (and the internal
// packages, which are the bulk of the system) at reference quality.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

func TestAllExportedDeclarationsDocumented(t *testing.T) {
	var violations []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Examples and commands are package main; still checked.
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return err
		}
		for _, decl := range f.Decls {
			switch dd := decl.(type) {
			case *ast.FuncDecl:
				if dd.Name.IsExported() && dd.Doc == nil {
					violations = append(violations, pos(fset, dd.Pos())+" func "+dd.Name.Name)
				}
			case *ast.GenDecl:
				checkGenDecl(fset, dd, &violations)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range violations {
		t.Errorf("undocumented exported declaration: %s", v)
	}
}

func checkGenDecl(fset *token.FileSet, dd *ast.GenDecl, violations *[]string) {
	for _, spec := range dd.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && dd.Doc == nil && s.Doc == nil && s.Comment == nil {
				*violations = append(*violations, pos(fset, s.Pos())+" type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			// A doc comment on the grouped decl, the spec, or a
			// trailing line comment all count.
			if dd.Doc != nil || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					*violations = append(*violations, pos(fset, s.Pos())+" value "+name.Name)
				}
			}
		}
	}
}

func pos(fset *token.FileSet, p token.Pos) string {
	position := fset.Position(p)
	return position.Filename + ":" + itoa(position.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for n > 0 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
		n /= 10
	}
	return string(digits)
}
