package pilotrf

import (
	"context"
	"encoding/json"
	"path/filepath"
	"testing"
)

// TestCampaignFacade runs a small campaign through the facade twice —
// once on one worker, once on four with a cache — and checks the
// reports are byte-identical and the cache was written.
func TestCampaignFacade(t *testing.T) {
	spec := CampaignSpec{
		Benchmarks: []string{"sgemm"},
		Designs:    []string{"part-adaptive"},
		Protect:    []string{"none", "secded"},
		Trials:     2,
		Seed:       7,
		Scale:      0.05,
		SMs:        1,
	}

	seqPool, err := NewWorkerPool(PoolConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer seqPool.Close()
	seq, err := RunFaultCampaign(context.Background(), spec, CampaignOptions{Pool: seqPool})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Schema != CampaignSchema {
		t.Fatalf("schema %q, want %q", seq.Schema, CampaignSchema)
	}

	cache, err := OpenResultCache(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	parPool, err := NewWorkerPool(PoolConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer parPool.Close()
	par, err := RunFaultCampaign(context.Background(), spec, CampaignOptions{Pool: parPool, Cache: cache})
	if err != nil {
		t.Fatal(err)
	}

	sb, _ := json.Marshal(seq)
	pb, _ := json.Marshal(par)
	if string(sb) != string(pb) {
		t.Fatalf("parallel facade report differs from sequential:\n%s\nvs\n%s", sb, pb)
	}
	if st := cache.Stats(); st.Puts == 0 {
		t.Errorf("cache recorded no writes: %+v", st)
	}
	if DefaultWorkers() < 1 {
		t.Errorf("DefaultWorkers() = %d", DefaultWorkers())
	}
}
