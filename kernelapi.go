package pilotrf

import (
	"pilotrf/internal/asm"
	"pilotrf/internal/cfg"
	"pilotrf/internal/isa"
	"pilotrf/internal/kernel"
)

// The kernel-authoring API: downstream users write their own workloads
// against the same builder the bundled benchmarks use. These are aliases
// to the internal implementation, re-exported through the facade.

// Kernel couples a program with its launch geometry.
type Kernel = kernel.Kernel

// Program is a validated kernel binary.
type Program = kernel.Program

// KernelBuilder assembles programs instruction by instruction with labels
// and structured control flow.
type KernelBuilder = kernel.Builder

// Reg is a general-purpose architected register; Pred a predicate
// register; CmpOp a SETP comparison; Special a hardware-supplied value.
type (
	Reg     = isa.Reg
	Pred    = isa.Pred
	CmpOp   = isa.CmpOp
	Special = isa.Special
)

// Comparison operators for SETP/SETPI.
const (
	CmpEQ = isa.CmpEQ
	CmpNE = isa.CmpNE
	CmpLT = isa.CmpLT
	CmpLE = isa.CmpLE
	CmpGT = isa.CmpGT
	CmpGE = isa.CmpGE
)

// Special registers readable with S2R.
const (
	SRTid    = isa.SRTid
	SRCTAid  = isa.SRCTAid
	SRNTid   = isa.SRNTid
	SRNCTAid = isa.SRNCTAid
	SRLane   = isa.SRLane
	SRWarpID = isa.SRWarpID
)

// NewKernelBuilder returns a builder for a kernel with numRegs
// architected registers per thread.
func NewKernelBuilder(name string, numRegs int) *KernelBuilder {
	return kernel.NewBuilder(name, numRegs)
}

// R returns the n-th general purpose register (panics out of range).
func R(n int) Reg { return isa.R(n) }

// P returns the n-th predicate register (panics out of range).
func P(n int) Pred { return isa.P(n) }

// Assemble parses textual assembly (see the internal/asm syntax) into a
// validated program.
func Assemble(src string) (*Program, error) { return asm.Assemble(src) }

// AssemblyText renders a program as parseable assembly; it round-trips
// through Assemble.
func AssemblyText(p *Program) string { return asm.Text(p) }

// CheckReconvergence verifies that every divergent branch in the program
// reconverges at its immediate post-dominator — the structural invariant
// the SIMT stack relies on. The kernel builder's structured helpers and
// the assembler's defaults always satisfy it; hand-written branch/reconv
// encodings should be checked.
func CheckReconvergence(p *Program) error { return cfg.CheckReconvergence(p) }
