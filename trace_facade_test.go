package pilotrf

import (
	"bytes"
	"context"
	"testing"
)

// TestSpanTracingFacade runs a traced campaign through the facade and
// exercises the whole span surface: NDJSON round-trip, tree assembly,
// wall stripping, and Perfetto conversion.
func TestSpanTracingFacade(t *testing.T) {
	spec := CampaignSpec{
		Benchmarks: []string{"sgemm"},
		Designs:    []string{"part-adaptive"},
		Protect:    []string{"none", "secded"},
		Trials:     2,
		Seed:       7,
		Scale:      0.05,
		SMs:        1,
	}
	pool, err := NewWorkerPool(PoolConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	opt := CampaignOptions{Pool: pool}
	rec := EnableSpanTracing(&opt, true)
	if opt.Trace != rec {
		t.Fatal("EnableSpanTracing did not attach the recorder")
	}
	if _, err := RunFaultCampaign(context.Background(), spec, opt); err != nil {
		t.Fatal(err)
	}
	spans := rec.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}

	var buf bytes.Buffer
	if err := WriteSpans(&buf, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(`{"schema":"`+SpanSchema+`"}`)) {
		t.Fatalf("NDJSON does not open with the %s header: %.80s", SpanSchema, buf.Bytes())
	}
	back, err := ReadSpans(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round-trip read: %v", err)
	}
	if len(back) != len(spans) {
		t.Fatalf("round trip lost spans: %d vs %d", len(back), len(spans))
	}

	root, err := BuildSpanTree(spans)
	if err != nil {
		t.Fatalf("tree invalid: %v", err)
	}
	if root.Name != "campaign" {
		t.Fatalf("root span %q, want campaign", root.Name)
	}

	stripped := StripSpanWall(spans)
	for i, s := range stripped {
		if s.Wall != nil {
			t.Fatal("StripSpanWall left a wall section")
		}
		if spans[i].Wall == nil {
			t.Fatal("wall-clock recorder produced a span without a wall section")
		}
	}

	var pf bytes.Buffer
	if err := WriteSpansPerfetto(&pf, spans); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(pf.Bytes(), []byte(`"traceEvents"`)) {
		t.Fatal("Perfetto output missing traceEvents envelope")
	}
}
