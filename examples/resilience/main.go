// Resilience: a miniature soft-error campaign through the public API.
// The paper's 224 KB SRF runs at 0.3 V near-threshold, exactly where
// SRAM critical charge collapses and the soft-error rate spikes — so
// the energy win is only real if the NTV partition can be protected
// affordably. This example injects accelerated-rate faults into one
// benchmark under each protection scheme, classifies every trial
// (masked / corrected / aborted / silent corruption) against a
// fault-free golden run, and prices the protection overhead.
package main

import (
	"errors"
	"fmt"
	"log"

	"pilotrf"
)

const (
	bench  = "sgemm"
	rate   = 2e-11 // upsets/bit/cycle: accelerated ~1e8x over real SER
	trials = 8
)

func newSim() *pilotrf.Simulator {
	sim, err := pilotrf.NewSimulator(pilotrf.Options{
		SMs:       1,
		Design:    pilotrf.DesignPartitionedAdaptive,
		Profiling: pilotrf.ProfileHybrid,
		Scale:     0.1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sim
}

func main() {
	// Golden run: same seed discipline, no injection. Its dataflow
	// digest is the reference every faulty trial is compared against.
	golden := newSim()
	gp := golden.EnableSDCProbe()
	if _, err := golden.RunBenchmark(bench); err != nil {
		log.Fatal(err)
	}

	schemes := []struct {
		name   string
		scheme pilotrf.ProtectionScheme
	}{
		{"none", pilotrf.Unprotected()},
		{"parity", pilotrf.FullParity()},
		{"secded", pilotrf.FullSECDED()},
		{"paper", pilotrf.PaperProtection()},
	}

	fmt.Printf("%s, %d trials/scheme, rate %.0e upsets/bit/cycle\n\n", bench, trials, rate)
	fmt.Printf("%-8s  %6s %9s %7s %5s  %10s\n",
		"scheme", "masked", "corrected", "aborted", "sdc", "ecc-ovh-pJ")

	for _, s := range schemes {
		var masked, corrected, aborted, sdc int
		var overheadPJ float64
		for trial := 0; trial < trials; trial++ {
			sim := newSim()
			if err := sim.EnableProtection(s.scheme); err != nil {
				log.Fatal(err)
			}
			led := sim.EnableEnergyLedger(0)
			probe := sim.EnableSDCProbe()
			err := sim.EnableFaultInjection(pilotrf.FaultConfig{
				Rate: rate,
				Seed: 1 + uint64(trial)*0x9E3779B97F4A7C15,
			})
			if err != nil {
				log.Fatal(err)
			}

			res, err := sim.RunBenchmark(bench)
			overheadPJ += led.OverheadPJ()
			var ue *pilotrf.UnrecoverableFault
			if errors.As(err, &ue) {
				aborted++
				continue
			}
			if err != nil {
				log.Fatal(err)
			}
			ft := res.Stats.FaultTotals()
			switch _, diverged := probe.Diverged(gp); {
			case diverged:
				sdc++
			case ft.Corrected+ft.RetrySuccess+ft.CAMRepaired > 0:
				corrected++
			default:
				masked++
			}
		}
		fmt.Printf("%-8s  %6d %9d %7d %5d  %10.1f\n",
			s.name, masked, corrected, aborted, sdc, overheadPJ/float64(trials))
	}

	fmt.Println("\nUnprotected runs turn strikes into silent data corruption; parity")
	fmt.Println("detects them (aborting on uncorrectable cells); SECDED corrects them")
	fmt.Println("in place for a per-access check-bit premium. The paper scheme puts")
	fmt.Println("SECDED only where NTV operation needs it. For the full grid, run")
	fmt.Println("cmd/faultcampaign.")
}
