// Quickstart: run one benchmark on the paper's proposed register file
// design and on the two baselines, and print the headline numbers —
// energy savings and performance overhead.
package main

import (
	"fmt"
	"log"

	"pilotrf"
)

func main() {
	const bench = "backprop"

	run := func(opts pilotrf.Options) pilotrf.Result {
		s, err := pilotrf.NewSimulator(opts)
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunBenchmark(bench)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	// The performance baseline: a monolithic 256 KB MRF at
	// super-threshold voltage.
	base := run(pilotrf.Options{
		Design:    pilotrf.DesignMonolithicSTV,
		Profiling: pilotrf.ProfileStaticFirstN,
	})

	// The power-aggressive baseline: the same MRF at near-threshold
	// voltage (3-cycle access).
	ntv := run(pilotrf.Options{
		Design:    pilotrf.DesignMonolithicNTV,
		Profiling: pilotrf.ProfileStaticFirstN,
	})

	// The paper's proposal: FRF+SRF partition, adaptive FRF power mode,
	// hybrid (compiler + pilot warp) profiling.
	proposed := run(pilotrf.PaperOptions())

	fmt.Printf("benchmark: %s\n\n", bench)
	fmt.Printf("%-22s %12s %10s %12s\n", "design", "cycles", "slowdown", "dyn. saving")
	row := func(name string, r pilotrf.Result) {
		fmt.Printf("%-22s %12d %9.1f%% %11.1f%%\n",
			name, r.Cycles(),
			(float64(r.Cycles())/float64(base.Cycles())-1)*100,
			r.DynamicSavings()*100)
	}
	row("MRF @ STV (baseline)", base)
	row("MRF @ NTV", ntv)
	row("Partitioned+Adaptive", proposed)

	fmt.Printf("\nproposed design detail:\n")
	fmt.Printf("  accesses served by the FRF: %.0f%%\n", proposed.FRFShare()*100)
	fmt.Printf("  top-4 registers carry %.0f%% of accesses\n", proposed.TopNShare(4)*100)
	fmt.Printf("  RF leakage: %.1f mW vs %.1f mW baseline (%.0f%% saving)\n",
		proposed.Energy.LeakageMW, base.Energy.LeakageMW,
		(1-proposed.Energy.LeakageMW/base.Energy.LeakageMW)*100)
}
