// Tracing: attach the pipeline flight recorder to a run and show what the
// SM did cycle by cycle — issues, bank accesses with their partition
// routing, memory transactions, FRF power-mode switches, and the moment
// the pilot warp finishes and the swapping table is reconfigured. The
// same run is exported as a Perfetto trace (open trace.json in
// ui.perfetto.dev or chrome://tracing), its zero-issue cycles are
// attributed to stall causes, and the per-epoch metric time series is
// written as CSV.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"

	"pilotrf"
)

func main() {
	s, err := pilotrf.NewSimulator(pilotrf.Options{
		SMs:       1,
		Design:    pilotrf.DesignPartitionedAdaptive,
		Profiling: pilotrf.ProfileHybrid,
		Scale:     0.05,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Tee the same event stream into an in-memory flight recorder and a
	// Perfetto trace_event JSON exporter.
	ring := pilotrf.NewRingTracer(200_000)
	traceFile, err := os.Create("trace.json")
	if err != nil {
		log.Fatal(err)
	}
	defer traceFile.Close()
	perfetto := pilotrf.NewPerfettoTracer(traceFile)
	s.Config().Tracer = pilotrf.NewTeeTracer(ring, perfetto)

	// Attribute every zero-issue cycle to a cause and sample per-epoch
	// metrics (issue utilization, partition mix, power mode, stalls).
	metrics := s.EnableMetrics(0)

	res, err := s.RunBenchmark("kmeans")
	if err != nil {
		log.Fatal(err)
	}
	if err := pilotrf.FlushTracer(s.Config().Tracer); err != nil {
		log.Fatal(err)
	}

	events := ring.Events()
	fmt.Printf("run finished in %d cycles; recorded %d pipeline events\n\n", res.Cycles(), len(events))

	// Show the first instructions flowing through the pipeline.
	fmt.Println("first 15 events:")
	for _, e := range events[:15] {
		fmt.Println(" ", e)
	}

	// Find the pilot completion and the first FRF mode switches.
	fmt.Println("\nkey moments:")
	shown := 0
	for _, e := range events {
		switch e.Kind.String() {
		case "pilot-done", "mode-switch":
			fmt.Println(" ", e)
			shown++
		}
		if shown >= 8 {
			break
		}
	}

	// Tally where the time went, by event kind.
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind.String()]++
	}
	fmt.Println("\nevent totals:")
	for _, k := range []string{"issue", "bank", "dispatch", "writeback", "mem-start", "mode-switch"} {
		fmt.Printf("  %-12s %d\n", k, kinds[k])
	}

	// Where did the stall cycles go? Every zero-issue SM-cycle is charged
	// to exactly one cause; the table provably sums to SM-cycles − busy.
	bd, busy, smCycles := res.Stats.StallTotals()
	fmt.Printf("\nstall attribution (SM-cycles=%d busy=%d stalled=%d):\n%s\n",
		smCycles, busy, smCycles-busy, bd.Table())

	// Dump the per-epoch time series and preview its shape.
	csvFile, err := os.Create("metrics.csv")
	if err != nil {
		log.Fatal(err)
	}
	if err := metrics.WriteCSV(csvFile); err != nil {
		log.Fatal(err)
	}
	if err := csvFile.Close(); err != nil {
		log.Fatal(err)
	}
	var preview strings.Builder
	if err := metrics.WriteCSV(&preview); err != nil {
		log.Fatal(err)
	}
	lines := strings.SplitN(preview.String(), "\n", 4)
	fmt.Printf("metrics.csv: %d epoch samples of %d columns; first rows:\n",
		metrics.Series().Len(), len(metrics.Series().Columns()))
	for _, l := range lines[:3] {
		fmt.Println(" ", l)
	}
	fmt.Println("\nwrote trace.json — open it in ui.perfetto.dev or chrome://tracing")
}
