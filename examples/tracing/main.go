// Tracing: attach the pipeline flight recorder to a run and show what the
// SM did cycle by cycle — issues, bank accesses with their partition
// routing, memory transactions, FRF power-mode switches, and the moment
// the pilot warp finishes and the swapping table is reconfigured.
package main

import (
	"fmt"
	"log"

	"pilotrf"
)

func main() {
	s, err := pilotrf.NewSimulator(pilotrf.Options{
		SMs:       1,
		Design:    pilotrf.DesignPartitionedAdaptive,
		Profiling: pilotrf.ProfileHybrid,
		Scale:     0.05,
	})
	if err != nil {
		log.Fatal(err)
	}
	tracer := pilotrf.NewRingTracer(200_000)
	s.Config().Tracer = tracer

	res, err := s.RunBenchmark("kmeans")
	if err != nil {
		log.Fatal(err)
	}

	events := tracer.Events()
	fmt.Printf("run finished in %d cycles; recorded %d pipeline events\n\n", res.Cycles(), len(events))

	// Show the first instructions flowing through the pipeline.
	fmt.Println("first 15 events:")
	for _, e := range events[:15] {
		fmt.Println(" ", e)
	}

	// Find the pilot completion and the first FRF mode switches.
	fmt.Println("\nkey moments:")
	shown := 0
	for _, e := range events {
		switch e.Kind.String() {
		case "pilot-done", "mode-switch":
			fmt.Println(" ", e)
			shown++
		}
		if shown >= 8 {
			break
		}
	}

	// Tally where the time went, by event kind.
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind.String()]++
	}
	fmt.Println("\nevent totals:")
	for _, k := range []string{"issue", "bank", "dispatch", "writeback", "mem-start", "mode-switch"} {
		fmt.Printf("  %-12s %d\n", k, kinds[k])
	}
}
