# A tree reduction written in assembly: each thread accumulates a strided
# slice of the input, then the warp collapses it with five SHFL butterfly
# rounds. The accumulator and cursor are the dynamically hot registers —
# a shape the pilot warp identifies and the FRF absorbs.
.kernel reduce
.regs 10

    S2R   R0, SR_TID
    S2R   R9, SR_LANE
    SHLI  R1, R0, 2        # element cursor (hot)
    MOVI  R2, 0            # partial sum (hot)
    MOVI  R3, 0            # trip counter
loop:
    LDS   R4, [R1+0]       # strided element (hot)
    IADD  R2, R2, R4
    IADDI R1, R1, 128
    IADDI R3, R3, 1
    SETPI.LT P0, R3, 24
    @P0 BRA loop

    # Warp-level butterfly: R2 += R2 of lane (lane ^ delta).
    MOVI  R5, 16
fold:
    XOR   R6, R9, R5
    SHFL  R7, R2, R6
    IADD  R2, R2, R7
    SHRI  R5, R5, 1
    SETPI.GE P1, R5, 1
    @P1 BRA fold

    STG   [R1+0], R2
    EXIT
