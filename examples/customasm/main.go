// Customasm: ship a kernel as an assembly file (embedded at build time),
// assemble it with the public API, verify its reconvergence structure,
// and run it across the register file designs.
package main

import (
	_ "embed"
	"fmt"
	"log"

	"pilotrf"
)

//go:embed reduce.asm
var source string

func main() {
	prog, err := pilotrf.Assemble(source)
	if err != nil {
		log.Fatal(err)
	}
	if err := pilotrf.CheckReconvergence(prog); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %s: %d instructions, %d registers/thread\n\n",
		prog.Name, prog.Len(), prog.NumRegs)

	for _, d := range []struct {
		name   string
		design pilotrf.Design
		prof   pilotrf.Technique
	}{
		{"MRF @ STV", pilotrf.DesignMonolithicSTV, pilotrf.ProfileStaticFirstN},
		{"MRF @ NTV", pilotrf.DesignMonolithicNTV, pilotrf.ProfileStaticFirstN},
		{"Partitioned+Adaptive", pilotrf.DesignPartitionedAdaptive, pilotrf.ProfileHybrid},
	} {
		s, err := pilotrf.NewSimulator(pilotrf.Options{
			SMs: 1, Design: d.design, Profiling: d.prof,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunKernels(prog.Name, []pilotrf.Kernel{
			{Prog: prog, ThreadsPerCTA: 256, NumCTAs: 48},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s cycles=%-7d FRF=%3.0f%%  dyn.saving=%5.1f%%\n",
			d.name, res.Cycles(), res.FRFShare()*100, res.DynamicSavings()*100)
	}
}
