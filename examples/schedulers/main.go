// Schedulers: compare the three warp schedulers (loose round-robin,
// greedy-then-oldest, and the two-level scheduler of the RFC design) on
// the proposed partitioned register file, reproducing the paper's claim
// that the technique performs consistently across schedulers.
package main

import (
	"fmt"
	"log"

	"pilotrf"
)

func main() {
	schedulers := []struct {
		name string
		pol  pilotrf.Scheduler
	}{
		{"LRR", pilotrf.SchedulerLRR},
		{"GTO", pilotrf.SchedulerGTO},
		{"TL", pilotrf.SchedulerTL},
		{"FetchGroup", pilotrf.SchedulerFetchGroup},
	}
	benches := []string{"BFS", "hotspot", "sgemm", "LIB"}

	run := func(design pilotrf.Design, prof pilotrf.Technique, pol pilotrf.Scheduler, bench string) pilotrf.Result {
		s, err := pilotrf.NewSimulator(pilotrf.Options{
			SMs: 1, Design: design, Profiling: prof, Scheduler: pol, Scale: 0.5,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunBenchmark(bench)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	for _, sc := range schedulers {
		fmt.Printf("=== %s scheduler ===\n", sc.name)
		fmt.Printf("  %-10s %10s %10s %12s %10s\n", "bench", "base cyc", "part cyc", "overhead", "saving")
		for _, b := range benches {
			base := run(pilotrf.DesignMonolithicSTV, pilotrf.ProfileStaticFirstN, sc.pol, b)
			part := run(pilotrf.DesignPartitionedAdaptive, pilotrf.ProfileHybrid, sc.pol, b)
			fmt.Printf("  %-10s %10d %10d %11.1f%% %9.1f%%\n",
				b, base.Cycles(), part.Cycles(),
				(float64(part.Cycles())/float64(base.Cycles())-1)*100,
				part.DynamicSavings()*100)
		}
		fmt.Println()
	}
}
