// Energysweep: ablate the paper's choice of four FRF registers per
// thread. Sweeping the fast-partition size shows the tradeoff the paper
// settled at n = 4 (32 KB of 256 KB): fewer registers miss the hot set,
// more registers grow the fast (expensive) partition without capturing
// proportionally more accesses.
package main

import (
	"fmt"
	"log"
	"os"

	"pilotrf"
)

// dumpAttribution re-runs the paper design point (4 FRF registers) on
// one benchmark with the energy ledger and swap audit attached, and
// writes the per-register heatmap plus the placement audit trail.
func dumpAttribution(bench string) {
	sim, err := pilotrf.NewSimulator(pilotrf.Options{
		SMs:       1,
		Design:    pilotrf.DesignPartitionedAdaptive,
		Profiling: pilotrf.ProfileHybrid,
		Scale:     0.5,
	})
	if err != nil {
		log.Fatal(err)
	}
	led := sim.EnableEnergyLedger(0)
	audit := sim.EnableSwapAudit()
	res, err := sim.RunBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	if err := led.CheckConservation(res.Stats.PartAccesses(), res.Cycles()); err != nil {
		log.Fatalf("energy ledger conservation: %v", err)
	}

	heatPath := bench + "_heatmap.json"
	auditPath := bench + "_audit.csv"
	write := func(path string, fn func(w *os.File) error) {
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := fn(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			log.Fatalf("writing %s: %v", path, err)
		}
	}
	write(heatPath, func(f *os.File) error { return led.WriteHeatmapJSON(f) })
	write(auditPath, func(f *os.File) error { return audit.WriteCSV(f) })
	fmt.Printf("\n%s at the design point: %d heat cells -> %s, %d placement decisions -> %s\n",
		bench, len(led.HeatCells()), heatPath, audit.Len(), auditPath)
}

func main() {
	benches := []string{"sgemm", "kmeans", "srad"}

	fmt.Printf("%-8s", "FRF regs")
	for _, b := range benches {
		fmt.Printf("  %14s", b)
	}
	fmt.Println("\n          (FRF share / dynamic saving per benchmark)")

	for _, frfRegs := range []int{2, 3, 4, 5, 6, 8} {
		sim, err := pilotrf.NewSimulator(pilotrf.Options{
			SMs:          1,
			Design:       pilotrf.DesignPartitionedAdaptive,
			Profiling:    pilotrf.ProfileHybrid,
			Scale:        0.5,
			FRFRegisters: frfRegs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d", frfRegs)
		for _, b := range benches {
			res, err := sim.RunBenchmark(b)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.0f%% / %5.1f%%", res.FRFShare()*100, res.DynamicSavings()*100)
		}
		fmt.Println()
	}

	fmt.Println("\nThe paper's design point is 4 registers per thread: beyond it the")
	fmt.Println("FRF share saturates while the fast partition keeps growing.")

	dumpAttribution("sgemm")
}
