// Energysweep: ablate the paper's choice of four FRF registers per
// thread. Sweeping the fast-partition size shows the tradeoff the paper
// settled at n = 4 (32 KB of 256 KB): fewer registers miss the hot set,
// more registers grow the fast (expensive) partition without capturing
// proportionally more accesses.
package main

import (
	"fmt"
	"log"

	"pilotrf"
)

func main() {
	benches := []string{"sgemm", "kmeans", "srad"}

	fmt.Printf("%-8s", "FRF regs")
	for _, b := range benches {
		fmt.Printf("  %14s", b)
	}
	fmt.Println("\n          (FRF share / dynamic saving per benchmark)")

	for _, frfRegs := range []int{2, 3, 4, 5, 6, 8} {
		sim, err := pilotrf.NewSimulator(pilotrf.Options{
			SMs:          1,
			Design:       pilotrf.DesignPartitionedAdaptive,
			Profiling:    pilotrf.ProfileHybrid,
			Scale:        0.5,
			FRFRegisters: frfRegs,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d", frfRegs)
		for _, b := range benches {
			res, err := sim.RunBenchmark(b)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %5.0f%% / %5.1f%%", res.FRFShare()*100, res.DynamicSavings()*100)
		}
		fmt.Println()
	}

	fmt.Println("\nThe paper's design point is 4 registers per thread: beyond it the")
	fmt.Println("FRF share saturates while the fast partition keeps growing.")
}
