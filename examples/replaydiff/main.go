// Replaydiff: flight-recorder walkthrough. The example records the
// same benchmark twice — once with pilot-warp profiling, once with the
// oracle placement (the measured top registers fed back in) — then
// diffs the two recordings to localize the first cycle where the pilot
// design departs from the oracle, and finally replays the pilot
// recording to verify the simulator's determinism.
//
// The diff's "subsystem" line is the payoff: when pilot and oracle
// disagree, the first diverging event says whether the disagreement
// started in FRF/SRF routing (different placement), the warp scheduler
// (different timing), or the swap table itself.
package main

import (
	"fmt"
	"log"
	"os"

	"pilotrf"
)

const bench = "sgemm"

// newSim returns a 1-SM simulator at reduced scale; every run in this
// example must use identical options so the recordings stay comparable.
func newSim() *pilotrf.Simulator {
	sim, err := pilotrf.NewSimulator(pilotrf.Options{
		SMs:       1,
		Design:    pilotrf.DesignPartitionedAdaptive,
		Profiling: pilotrf.ProfilePilot,
		Scale:     0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	return sim
}

// capture runs the benchmark with the given profiling setup and returns
// the recording.
func capture(label string, oracle []pilotrf.Reg) *pilotrf.Recording {
	sim := newSim()
	if oracle != nil {
		sim.Config().Profiling = pilotrf.ProfileOracle
		sim.Config().Oracle = oracle
	}
	rec := sim.EnableFlightRecorder(64)
	if _, err := sim.RunBenchmark(bench); err != nil {
		log.Fatal(err)
	}
	l := rec.Log()
	l.Meta.Label = label
	fmt.Printf("%-8s recorded %d events, %d checksums\n",
		label, len(l.Events), len(l.Checksums()))
	return l
}

func main() {
	// Pass 1: measure the true top registers with a plain pilot run.
	measure := newSim()
	res, err := measure.RunBenchmark(bench)
	if err != nil {
		log.Fatal(err)
	}
	var oracle []pilotrf.Reg
	for _, kv := range res.Stats.Kernels[0].RegHist.TopN(4) {
		oracle = append(oracle, pilotrf.R(kv.Key))
	}
	fmt.Printf("measured top-4 registers of %s: %v\n\n", bench, oracle)

	// Pass 2: record pilot vs oracle placement and diff.
	pilot := capture("pilot", nil)
	orc := capture("oracle", oracle)

	fmt.Println()
	report := pilotrf.DiffRecordings(pilot, orc, 3)
	if err := report.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Pass 3: replay verification — the pilot recording must reproduce
	// exactly on a fresh simulator.
	replay := newSim()
	chk := replay.EnableReplayCheck(pilot)
	if _, err := replay.RunBenchmark(bench); err != nil {
		log.Fatal(err)
	}
	if err := chk.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplay verification: %d events reproduced exactly\n", chk.Checked())
}
