// Profilingdemo: write a custom kernel with the public kernel builder and
// watch the three profiling techniques at work. The kernel hides its hot
// registers inside a loop (a Category 2 shape), so the compiler's static
// census picks the wrong set, the pilot warp finds the right one, and the
// hybrid technique combines both.
package main

import (
	"fmt"
	"log"

	"pilotrf"
)

// buildKernel assembles a Category 2 style kernel: a text-heavy setup on
// R0..R2 followed by a hot accumulation loop on R8/R9.
func buildKernel() *pilotrf.Program {
	b := pilotrf.NewKernelBuilder("demo", 12)
	b.S2R(pilotrf.R(0), pilotrf.SRTid)
	b.S2R(pilotrf.R(1), pilotrf.SRCTAid)
	// Unrolled setup: R0-R2 appear often in the text but run once.
	for i := 0; i < 5; i++ {
		b.IMAD(pilotrf.R(2), pilotrf.R(0), pilotrf.R(1), pilotrf.R(2))
		b.XOR(pilotrf.R(0), pilotrf.R(0), pilotrf.R(2))
	}
	b.SHLI(pilotrf.R(8), pilotrf.R(2), 2) // cursor (dynamically hot)
	b.MOVI(pilotrf.R(9), 0)               // accumulator (dynamically hot)
	b.CountedLoop(pilotrf.R(3), pilotrf.P(0), 50, func() {
		b.LDS(pilotrf.R(10), pilotrf.R(8), 0)
		b.IMAD(pilotrf.R(9), pilotrf.R(10), pilotrf.R(10), pilotrf.R(9))
		b.IADDI(pilotrf.R(8), pilotrf.R(8), 4)
	})
	b.STG(pilotrf.R(8), 0, pilotrf.R(9))
	b.EXIT()
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func main() {
	prog := buildKernel()
	fmt.Println("kernel under test:")
	fmt.Println(prog.Disassemble())

	techniques := []struct {
		name string
		t    pilotrf.Technique
	}{
		{"static-first-4", pilotrf.ProfileStaticFirstN},
		{"compiler", pilotrf.ProfileCompiler},
		{"pilot warp", pilotrf.ProfilePilot},
		{"hybrid", pilotrf.ProfileHybrid},
	}

	fmt.Printf("%-16s %10s %12s %14s\n", "technique", "cycles", "FRF share", "dyn. saving")
	for _, tech := range techniques {
		s, err := pilotrf.NewSimulator(pilotrf.Options{
			SMs: 1, Design: pilotrf.DesignPartitionedAdaptive, Profiling: tech.t,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := s.RunKernels("demo", []pilotrf.Kernel{
			{Prog: prog, ThreadsPerCTA: 256, NumCTAs: 64},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s %10d %11.0f%% %13.1f%%\n",
			tech.name, res.Cycles(), res.FRFShare()*100, res.DynamicSavings()*100)
	}

	fmt.Println("\nThe loop registers (R8/R9 and the counter) dominate dynamically, so")
	fmt.Println("the pilot warp and the hybrid technique route most accesses to the")
	fmt.Println("fast partition; the static census is fooled by the unrolled setup.")
}
