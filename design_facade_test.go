package pilotrf

import (
	"context"
	"testing"
)

// TestSchemeRegistryFacade checks the design-scheme re-exports: the
// registry is reachable, mrf-stv leads it (the baseline every report
// normalizes against), and lookups round-trip.
func TestSchemeRegistryFacade(t *testing.T) {
	schemes := AllSchemes()
	if len(schemes) < 6 {
		t.Fatalf("%d registered schemes, want >= 6", len(schemes))
	}
	names := SchemeNames()
	if len(names) != len(schemes) {
		t.Fatalf("SchemeNames has %d entries, AllSchemes %d", len(names), len(schemes))
	}
	if names[0] != "mrf-stv" {
		t.Errorf("first registered scheme = %q, want mrf-stv", names[0])
	}
	for i, n := range names {
		sch, ok := LookupScheme(n)
		if !ok {
			t.Fatalf("LookupScheme(%q) missed a listed scheme", n)
		}
		if sch.Name() != n || schemes[i].Name() != n {
			t.Errorf("scheme %d: lookup %q, all %q, want %q", i, sch.Name(), schemes[i].Name(), n)
		}
	}
	if _, ok := LookupScheme("nonesuch"); ok {
		t.Error("LookupScheme accepted an unknown name")
	}
}

// TestNewSchemeSimulator runs a benchmark through a scheme-configured
// facade simulator and checks the scheme's settings actually took.
func TestNewSchemeSimulator(t *testing.T) {
	sch, ok := LookupScheme("rfc")
	if !ok {
		t.Fatal("rfc scheme not registered")
	}
	s, err := NewSchemeSimulator(sch, sch.DefaultKnobs(), Options{SMs: 1, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if !s.Config().UseRFC {
		t.Error("rfc scheme simulator has UseRFC off")
	}
	res, err := s.RunBenchmark("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.TotalCycles() == 0 {
		t.Error("scheme simulator ran zero cycles")
	}

	if _, err := NewSchemeSimulator(sch, DesignKnobs{Size: 99}, Options{}); err == nil {
		t.Error("NewSchemeSimulator accepted an out-of-range knob")
	}
}

// TestRunDSEFacade sweeps two schemes over one workload through the
// facade and sanity-checks the Pareto-marked report.
func TestRunDSEFacade(t *testing.T) {
	rep, err := RunDSE(context.Background(), DSEOptions{
		Schemes:   []string{"mrf-stv", "mrf-ntv"},
		Workloads: []string{"sgemm"},
		Scale:     0.02,
		SMs:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("%d points, want 2", len(rep.Points))
	}
	if rep.Baseline != "mrf-stv/default" {
		t.Errorf("baseline = %q", rep.Baseline)
	}
	var frontier int
	for _, p := range rep.Points {
		if p.Pareto {
			frontier++
		}
	}
	if frontier == 0 {
		t.Error("no frontier points marked")
	}
}
