package pilotrf

import (
	"context"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
)

// The simulation-service layer: a deterministic work-stealing pool, a
// content-addressed result cache, and the fault-campaign engine built
// on both. cmd/faultcampaign, cmd/experiments, cmd/pilotsim -parallel,
// and the cmd/pilotserve job server all run on these primitives; the
// facade re-exports them so library users can embed the same engine.
type (
	// WorkerPool runs independent tasks on per-worker deques with work
	// stealing, merging results in canonical submission order — parallel
	// runs produce byte-identical output to sequential ones.
	WorkerPool = jobs.Pool
	// PoolConfig sizes a WorkerPool (workers, queue depth, chunk size,
	// optional metrics registry).
	PoolConfig = jobs.Config
	// PoolTask is one unit of pool work.
	PoolTask = jobs.Task
	// PoolBatch tracks one submitted slice of tasks.
	PoolBatch = jobs.Batch
	// ResultCache persists computation results on disk under
	// content-addressed keys; corrupt entries degrade to cache misses.
	ResultCache = jobs.Cache
	// ResultCacheStats counts cache hits, misses, corruptions, writes.
	ResultCacheStats = jobs.CacheStats
	// CacheKeyBuilder derives content-addressed cache keys from named
	// fields (FNV-1a with the preimage kept for collision detection).
	CacheKeyBuilder = jobs.KeyBuilder

	// CampaignSpec declares a fault-injection campaign grid; zero
	// fields select the cmd/faultcampaign defaults.
	CampaignSpec = campaign.Spec
	// CampaignOptions wires a campaign onto a pool, an optional cache,
	// and optional progress callbacks.
	CampaignOptions = campaign.Options
	// CampaignReport is the versioned campaign result
	// (pilotrf-faultcampaign/v1), byte-reproducible from the spec.
	CampaignReport = campaign.Report
	// CampaignCell is one (design, protection, workload) result.
	CampaignCell = campaign.Cell
	// CampaignOutcomes counts trial classifications within a cell.
	CampaignOutcomes = campaign.Outcomes
)

// CampaignSchema identifies the campaign report format.
const CampaignSchema = campaign.Schema

// NewWorkerPool starts a work-stealing pool; Close it when done.
func NewWorkerPool(cfg PoolConfig) (*WorkerPool, error) { return jobs.New(cfg) }

// OpenResultCache opens (creating if needed) a content-addressed result
// cache rooted at dir.
func OpenResultCache(dir string) (*ResultCache, error) { return jobs.OpenCache(dir) }

// DefaultWorkers is the conventional pool size: one worker per core.
func DefaultWorkers() int { return jobs.DefaultWorkers() }

// RunFaultCampaign executes a classification campaign on opt.Pool,
// sharing one golden run per (design, workload) across every protection
// scheme's trials and resuming from opt.Cache when present. Equal specs
// produce byte-identical reports regardless of worker count.
func RunFaultCampaign(ctx context.Context, spec CampaignSpec, opt CampaignOptions) (CampaignReport, error) {
	return campaign.Run(ctx, spec, opt)
}
