// Package pilotrf is a library-level reproduction of "Pilot Register
// File: Energy Efficient Partitioned Register File for GPUs" (HPCA 2017):
// a cycle-level GPU simulator with a partitioned FinFET register file
// (fast STV partition + slow NTV partition), pilot-warp/compiler/hybrid
// register profiling, a register-file-cache baseline, and the circuit
// models (7 nm FinFET devices, FinCACTI-style array analysis) behind the
// paper's energy numbers.
//
// The package is a facade over the internal packages: it exposes the
// simulator configuration, the seventeen Table I workloads, the kernel
// builder for writing new workloads, and one function per paper table
// and figure (via RunExperiments / the experiments accessors).
//
// Quick start:
//
//	sim, _ := pilotrf.NewSimulator(pilotrf.PaperOptions())
//	res, _ := sim.RunBenchmark("backprop")
//	fmt.Printf("FRF share: %.0f%%, dynamic energy saving: %.0f%%\n",
//	        res.FRFShare()*100, res.DynamicSavings()*100)
package pilotrf

import (
	"context"
	"fmt"
	"io"

	"pilotrf/internal/design"
	"pilotrf/internal/dse"
	"pilotrf/internal/energy"
	"pilotrf/internal/fault"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/perfscope"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/workloads"
)

// Design selects the register file organization.
type Design = regfile.Design

// Register file designs.
const (
	// DesignMonolithicSTV is the performance baseline: a 256 KB MRF at
	// super-threshold voltage.
	DesignMonolithicSTV = regfile.DesignMonolithicSTV
	// DesignMonolithicNTV is the power-aggressive baseline: the MRF at
	// near-threshold voltage (3-cycle access).
	DesignMonolithicNTV = regfile.DesignMonolithicNTV
	// DesignPartitioned is the FRF+SRF split without the adaptive FRF.
	DesignPartitioned = regfile.DesignPartitioned
	// DesignPartitionedAdaptive is the paper's full proposal.
	DesignPartitionedAdaptive = regfile.DesignPartitionedAdaptive
)

// DesignScheme is a pluggable register-file design scheme from the
// internal/design registry: the four paper designs plus the rival
// schemes (GREENER-style liveness gating, the compiler-assisted
// register file cache). Each scheme owns its knob grid, its simulator
// configuration, and its energy pricing.
type DesignScheme = design.Scheme

// DesignKnobs selects one point of a scheme's tuning grid (a partition
// size, RFC entry count, or gating granularity, plus a supply voltage).
// The zero value is every scheme's default.
type DesignKnobs = design.Knobs

// AllSchemes returns every registered design scheme in registration
// order — the canonical order sweep reports use.
func AllSchemes() []DesignScheme { return design.All() }

// LookupScheme finds a registered design scheme by name ("mrf-stv",
// "part-adaptive", "greener", "rfc-hints", ...).
func LookupScheme(name string) (DesignScheme, bool) { return design.Lookup(name) }

// SchemeNames returns the registered scheme names in registration order.
func SchemeNames() []string { return design.Names() }

// NewSchemeSimulator builds a Simulator configured by a registered
// design scheme at the given knobs: the scheme picks the register file
// organization, scheduler, RFC, and gating settings, while opts
// supplies the rest (SMs, profiling, scale). opts.Design, opts.Scheduler,
// and opts.FRFRegisters are ignored — the scheme owns them.
func NewSchemeSimulator(scheme DesignScheme, knobs DesignKnobs, opts Options) (*Simulator, error) {
	opts = opts.withDefaults()
	cfg, err := sim.DefaultConfig().WithScheme(scheme, knobs)
	if err != nil {
		return nil, err
	}
	cfg.NumSMs = opts.SMs
	cfg.Profiling = opts.Profiling
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{opts: opts, cfg: cfg}, nil
}

// DSEOptions configures a design-space-exploration sweep (see RunDSE).
type DSEOptions = dse.Options

// DSEReport is a completed sweep: every scheme-by-knob grid point,
// priced and Pareto-marked ("pilotrf-dse/v1" on disk).
type DSEReport = dse.Report

// DSEPoint is one evaluated grid cell of a DSEReport.
type DSEPoint = dse.Point

// RunDSE sweeps the registered design schemes across their knob grids
// and the selected workloads, returning the energy-vs-IPC
// Pareto-frontier report. The report is byte-identical at any worker
// count.
func RunDSE(ctx context.Context, opts DSEOptions) (*DSEReport, error) {
	return dse.Sweep(ctx, opts)
}

// Technique selects how the FRF-resident registers are identified.
type Technique = profile.Technique

// Profiling techniques.
const (
	ProfileStaticFirstN = profile.TechniqueStaticFirstN
	ProfileCompiler     = profile.TechniqueCompiler
	ProfilePilot        = profile.TechniquePilot
	ProfileHybrid       = profile.TechniqueHybrid
	// ProfileOracle uses measured top registers from a prior run (set
	// them on Config().Oracle) — the upper bound pilot profiling chases.
	ProfileOracle = profile.TechniqueOracle
)

// Scheduler selects the warp scheduling policy.
type Scheduler = sim.Policy

// Warp schedulers.
const (
	SchedulerLRR        = sim.PolicyLRR
	SchedulerGTO        = sim.PolicyGTO
	SchedulerTL         = sim.PolicyTL
	SchedulerFetchGroup = sim.PolicyFetchGroup
)

// Options configures a Simulator. The zero value selects the MRF@STV
// baseline with no profiling (the natural zero of each field); use
// PaperOptions for the paper's preferred design point.
type Options struct {
	// SMs is the number of streaming multiprocessors (default 2; the
	// full GTX 780 chip is 15).
	SMs int
	// Design is the register file organization (default
	// DesignPartitionedAdaptive).
	Design Design
	// Profiling is the FRF management technique (default ProfileHybrid).
	Profiling Technique
	// Scheduler is the warp scheduler (default SchedulerGTO).
	Scheduler Scheduler
	// Scale multiplies workload CTA counts (default 1.0).
	Scale float64
	// FRFRegisters is the number of registers per thread kept in the
	// fast partition (default 4, the paper's choice: 32 KB of 256 KB).
	FRFRegisters int
}

// PaperOptions returns the paper's preferred design point: partitioned +
// adaptive FRF, hybrid profiling, GTO scheduling, two SMs, full-scale
// workloads.
func PaperOptions() Options {
	return Options{
		SMs:          2,
		Design:       DesignPartitionedAdaptive,
		Profiling:    ProfileHybrid,
		Scheduler:    SchedulerGTO,
		Scale:        1,
		FRFRegisters: 4,
	}
}

func (o Options) withDefaults() Options {
	if o.SMs == 0 {
		o.SMs = 2
	}
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.FRFRegisters == 0 {
		o.FRFRegisters = 4
	}
	return o
}

// Simulator runs workloads on a configured GPU model.
type Simulator struct {
	opts Options
	cfg  sim.Config
}

// NewSimulator validates the options and returns a simulator.
func NewSimulator(opts Options) (*Simulator, error) {
	opts = opts.withDefaults()
	cfg := sim.DefaultConfig().WithDesign(opts.Design)
	cfg.NumSMs = opts.SMs
	cfg.Profiling = opts.Profiling
	cfg.Policy = opts.Scheduler
	cfg.RF.FRFRegs = opts.FRFRegisters
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{opts: opts, cfg: cfg}, nil
}

// Config exposes the full low-level simulator configuration for advanced
// tuning before Run (latencies, collector counts, epoch thresholds, ...).
func (s *Simulator) Config() *sim.Config { return &s.cfg }

// Tracing types, re-exported for pipeline inspection: set a tracer with
// sim.Config().Tracer before running.
type (
	// Tracer receives pipeline events.
	Tracer = sim.Tracer
	// TraceEvent is one pipeline occurrence.
	TraceEvent = sim.TraceEvent
	// RingTracer keeps the last N events (a flight recorder).
	RingTracer = sim.RingTracer
	// WriterTracer streams events to an io.Writer.
	WriterTracer = sim.WriterTracer
)

// NewRingTracer returns a flight recorder holding the last n events.
func NewRingTracer(n int) *RingTracer { return sim.NewRingTracer(n) }

// Trace exporters and combinators, re-exported from the simulator.
type (
	// TraceKind classifies pipeline trace events.
	TraceKind = sim.TraceKind
	// TeeTracer fans events out to multiple tracers.
	TeeTracer = sim.TeeTracer
	// FilterTracer forwards only events matching a kind set and SM id.
	FilterTracer = sim.FilterTracer
	// PerfettoTracer exports Chrome/Perfetto trace_event JSON.
	PerfettoTracer = sim.PerfettoTracer
	// NDJSONTracer exports newline-delimited JSON events.
	NDJSONTracer = sim.NDJSONTracer
)

// NewPerfettoTracer returns a tracer writing a Chrome/Perfetto
// trace_event JSON file to w; FlushTracer it after the run to emit the
// footer.
func NewPerfettoTracer(w io.Writer) *PerfettoTracer { return sim.NewPerfettoTracer(w) }

// NewNDJSONTracer returns a tracer streaming events as NDJSON to w;
// FlushTracer it after the run.
func NewNDJSONTracer(w io.Writer) *NDJSONTracer { return sim.NewNDJSONTracer(w) }

// NewTeeTracer returns a tracer forwarding each event to every given
// tracer (nils are skipped).
func NewTeeTracer(tracers ...Tracer) *TeeTracer { return sim.NewTeeTracer(tracers...) }

// NewFilterTracer forwards events of the given kinds (none = all) from
// the given SM (-1 = all) to next.
func NewFilterTracer(next Tracer, smID int, kinds ...TraceKind) *FilterTracer {
	return sim.NewFilterTracer(next, smID, kinds...)
}

// FlushTracer drains a buffering tracer (no-op for unbuffered or nil).
func FlushTracer(t Tracer) error { return sim.FlushTracer(t) }

// Telemetry types, re-exported for stall attribution and per-epoch
// metric time series.
type (
	// StallCause labels why an SM issued nothing on a cycle.
	StallCause = telemetry.StallCause
	// StallBreakdown counts stall cycles per cause.
	StallBreakdown = telemetry.StallBreakdown
	// MetricsRecorder accumulates the per-epoch metric time series; write
	// it out with WriteCSV.
	MetricsRecorder = telemetry.Recorder
)

// Energy attribution types, re-exported for the streaming energy ledger
// and the FRF swap-decision audit trail.
type (
	// EnergyLedger attributes every RF access and leakage interval to a
	// (component, epoch, warp, register) bucket, conservation-checked
	// against the aggregate energy model.
	EnergyLedger = energy.Ledger
	// EpochCharge is one SM-epoch's access counts in the ledger.
	EpochCharge = energy.EpochCharge
	// HeatCell is one (warp, register) access-count bucket.
	HeatCell = energy.HeatCell
	// SwapAuditLog records every FRF placement decision.
	SwapAuditLog = profile.AuditLog
	// PlacementEvent is one recorded FRF placement.
	PlacementEvent = profile.PlacementEvent
	// PlacementReason says which mechanism placed a register.
	PlacementReason = profile.PlacementReason
)

// EnableEnergyLedger makes subsequent runs charge every RF access into
// the returned ledger, bucketed per component, per epochCycles-cycle
// epoch (0 = the adaptive-FRF default epoch), and per (warp, register)
// heat cell. Write it out with WriteEpochCSV, WriteHeatmapCSV, or
// WriteHeatmapJSON, and cross-check with CheckConservation.
func (s *Simulator) EnableEnergyLedger(epochCycles int) *EnergyLedger {
	led := energy.NewLedger(s.cfg.RF.Design, epochCycles)
	s.cfg.Energy = led
	return led
}

// EnableSwapAudit makes subsequent runs record every FRF placement
// decision — which technique placed which register at what cycle with
// what observed access count — into the returned audit log.
func (s *Simulator) EnableSwapAudit() *SwapAuditLog {
	log := &profile.AuditLog{}
	s.cfg.Audit = log
	return log
}

// EnableStallAttribution makes subsequent runs charge every zero-issue
// SM-cycle to a StallCause, exposed per kernel through
// Result.Stats.Kernels[i].StallBreakdown (and summed by
// Result.Stats.StallTotals).
func (s *Simulator) EnableStallAttribution() { s.cfg.Stalls = true }

// EnableMetrics makes subsequent runs sample per-SM metrics every
// epochCycles cycles (0 = the adaptive-FRF default epoch) into the
// returned recorder. It also implies stall attribution, which several of
// the sampled columns are derived from.
func (s *Simulator) EnableMetrics(epochCycles int) *MetricsRecorder {
	rec := sim.NewMetricsRecorder(epochCycles)
	s.cfg.Metrics = rec
	s.cfg.Stalls = true
	return rec
}

// Perfscope types, re-exported for profiling the simulator itself:
// wall-clock phase timings and the deterministic skip-headroom census.
type (
	// PerfProfiler aggregates per-SM censuses (and, when enabled, tick
	// phase timings) folded in at kernel boundaries.
	PerfProfiler = perfscope.Profiler
	// PerfCensus classifies every SM cycle as busy, active-no-issue,
	// skippable, or stalled-unknown; Skippable/SMCycles bounds the
	// speedup an event-driven cycle loop could deliver.
	PerfCensus = perfscope.Census
	// PerfReport is the versioned (pilotrf-perfscope/v1) JSON report
	// emitted by cmd/perfscope and pilotsim -perf-out.
	PerfReport = perfscope.Report
	// PerfEntry is one workload x design row of a PerfReport.
	PerfEntry = perfscope.Entry
)

// EnablePerfscope makes subsequent runs profile the simulator itself
// into the returned profiler: the deterministic skip-headroom census
// always, and per-phase wall-clock timings when wallClock is set (wall
// time is non-deterministic; leave it off for reproducible reports).
// Render the profiler into a report row with perfscope.NewEntry. The
// hooks are bit-identical to an unprofiled run either way.
func (s *Simulator) EnablePerfscope(wallClock bool) *PerfProfiler {
	p := perfscope.New(wallClock)
	s.cfg.Perf = p
	return p
}

// ReadPerfReport loads and validates a pilotrf-perfscope/v1 JSON report.
func ReadPerfReport(path string) (*PerfReport, error) { return perfscope.ReadFile(path) }

// Flight recorder types, re-exported for deterministic run capture,
// replay verification, and cross-run divergence diffing.
type (
	// FlightRecorder captures a run's architectural commitments (issue
	// decisions, warp lifecycle, RF routing, swap installs, mode flips,
	// periodic state checksums) into an in-memory event log.
	FlightRecorder = flightrec.Recorder
	// Recording is one captured run: header plus ordered event stream,
	// serializable as pilotrf-flightrec/v1 NDJSON.
	Recording = flightrec.Log
	// FlightEvent is one recorded architectural commitment.
	FlightEvent = flightrec.Event
	// ReplayChecker verifies a live run against a prior recording and
	// reports the first mismatching event.
	ReplayChecker = flightrec.Checker
	// DiffReport locates the first divergence between two recordings.
	DiffReport = flightrec.DiffReport
)

// EnableFlightRecorder makes subsequent runs stream every architectural
// commitment into the returned recorder, with a state checksum every
// checksumEvery cycles (<= 0 selects the default interval). Serialize
// the recording with Recorder.Log().WriteNDJSON and diff two recordings
// with DiffRecordings or cmd/rfdiff.
func (s *Simulator) EnableFlightRecorder(checksumEvery int) *FlightRecorder {
	rec := sim.NewFlightRecorder(&s.cfg, "", int64(checksumEvery))
	s.cfg.Record = rec
	return rec
}

// EnableReplayCheck makes subsequent runs verify against the recording:
// after the run, the returned checker's Err reports nil when the replay
// matched event for event, and the first divergence otherwise.
func (s *Simulator) EnableReplayCheck(log *Recording) *ReplayChecker {
	chk := flightrec.NewChecker(log)
	s.cfg.Record = chk
	return chk
}

// DiffRecordings aligns two recordings and reports their first
// divergence with window events of context on each side.
func DiffRecordings(a, b *Recording, window int) *DiffReport {
	return flightrec.Diff(a, b, window)
}

// ReadRecording loads a pilotrf-flightrec/v1 NDJSON recording.
func ReadRecording(path string) (*Recording, error) { return flightrec.ReadFile(path) }

// Resilience types, re-exported for soft-error injection campaigns,
// ECC/parity protection, and silent-data-corruption detection.
type (
	// FaultConfig parameterizes the seeded soft-error injector; the
	// zero value disables injection, a positive Rate enables it.
	FaultConfig = fault.Config
	// FaultStats counts injection activity and protection outcomes
	// (exposed per kernel via KernelStats.Faults and summed by
	// Result.Stats.FaultTotals).
	FaultStats = fault.Stats
	// Protection is one partition's protection code (none, parity, or
	// SECDED ECC).
	Protection = fault.Protection
	// ProtectionScheme assigns a Protection to each RF partition.
	ProtectionScheme = fault.Scheme
	// UnrecoverableFault is the structured error a run aborts with when
	// a detected-but-uncorrectable fault exhausts its re-issue retries;
	// unwrap it with errors.As.
	UnrecoverableFault = fault.UnrecoverableError
	// SDCProbe distills a run into per-kernel dataflow digests; compare
	// a faulty run's probe against a fault-free golden probe to detect
	// silent data corruption.
	SDCProbe = fault.DigestProbe
)

// Protection codes for ProtectionScheme slots.
const (
	ProtectNone   = fault.ProtectNone
	ProtectParity = fault.ProtectParity
	ProtectSECDED = fault.ProtectSECDED
)

// Protection scheme presets.
var (
	// Unprotected leaves every partition bare (the SDC baseline).
	Unprotected = fault.Unprotected
	// FullParity puts parity + re-issue retry on every partition.
	FullParity = fault.FullParity
	// FullSECDED puts SECDED ECC on every partition.
	FullSECDED = fault.FullSECDED
	// PaperProtection matches protection to operating point: SECDED on
	// the near-threshold SRF (and NTV MRF), parity on the STV FRF.
	PaperProtection = fault.PaperScheme
)

// EnableFaultInjection makes subsequent runs inject soft errors into the
// RF partitions and the swap-table CAM, deterministically from
// cfg.Seed. Outcomes land in FaultStats; an uncorrectable fault aborts
// the run with an *UnrecoverableFault.
func (s *Simulator) EnableFaultInjection(cfg FaultConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.cfg.Fault = &cfg
	return nil
}

// EnableProtection selects the ECC/parity scheme subsequent runs check
// faults against. Check-bit energy overhead is priced into any enabled
// EnergyLedger, so protected and unprotected runs are comparable.
func (s *Simulator) EnableProtection(scheme ProtectionScheme) error {
	if err := scheme.Validate(); err != nil {
		return err
	}
	s.cfg.Protect = scheme
	return nil
}

// EnableSDCProbe makes subsequent runs stream their dataflow digests
// into the returned probe. Run once fault-free and once with injection
// enabled, then probe.Diverged(golden) flags silent data corruption. It
// claims the recording sink, so it is mutually exclusive with
// EnableFlightRecorder and EnableReplayCheck.
func (s *Simulator) EnableSDCProbe() *SDCProbe {
	p := fault.NewDigestProbe()
	s.cfg.Record = p
	return p
}

// Result is the outcome of running one workload.
type Result struct {
	// Stats holds the raw simulator measurements per kernel.
	Stats sim.RunStats
	// Energy is the RF energy report for the simulated design.
	Energy energy.Report
	// BaselineDynamicPJ is what the same accesses would cost on the
	// MRF@STV baseline.
	BaselineDynamicPJ float64
}

// Cycles returns the total execution time in SM cycles.
func (r Result) Cycles() int64 { return r.Stats.TotalCycles() }

// FRFShare returns the fraction of RF accesses served by the fast
// partition (0 for monolithic designs).
func (r Result) FRFShare() float64 { return r.Stats.FRFShare() }

// DynamicSavings returns the RF dynamic-energy saving versus the MRF@STV
// baseline (the paper's headline 54% for the full design).
func (r Result) DynamicSavings() float64 {
	return energy.Savings(r.Energy.DynamicPJ, r.BaselineDynamicPJ)
}

// TopNShare returns the fraction of accesses captured by each kernel's
// top-n registers (Figure 2's metric).
func (r Result) TopNShare(n int) float64 { return r.Stats.TopNShareByKernel(n) }

// RunBenchmark runs one of the seventeen Table I benchmarks by name.
func (s *Simulator) RunBenchmark(name string) (Result, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return Result{}, err
	}
	return s.runWorkload(w)
}

// RunAll runs the whole suite and returns results keyed by benchmark.
func (s *Simulator) RunAll() (map[string]Result, error) {
	out := make(map[string]Result, 17)
	for _, w := range workloads.All() {
		res, err := s.runWorkload(w)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", w.Name, err)
		}
		out[w.Name] = res
	}
	return out, nil
}

func (s *Simulator) runWorkload(w workloads.Workload) (Result, error) {
	g, err := sim.New(s.cfg)
	if err != nil {
		return Result{}, err
	}
	rs, err := g.RunKernels(w.Name, w.Scale(s.opts.Scale).Kernels)
	if err != nil {
		return Result{}, err
	}
	return s.resultOf(rs), nil
}

func (s *Simulator) resultOf(rs sim.RunStats) Result {
	return Result{
		Stats:             rs,
		Energy:            energy.ForRun(s.opts.Design, rs.PartAccesses(), rs.TotalCycles()),
		BaselineDynamicPJ: energy.BaselineDynamicPJ(rs.TotalAccesses()),
	}
}

// RunKernels executes custom kernels (built with NewKernelBuilder) on the
// simulator.
func (s *Simulator) RunKernels(name string, kernels []Kernel) (Result, error) {
	g, err := sim.New(s.cfg)
	if err != nil {
		return Result{}, err
	}
	rs, err := g.RunKernels(name, kernels)
	if err != nil {
		return Result{}, err
	}
	return s.resultOf(rs), nil
}

// Benchmarks lists the seventeen Table I benchmark names.
func Benchmarks() []string { return workloads.Names() }

// BenchmarkCategory returns the paper's category (1, 2, or 3) for a
// benchmark.
func BenchmarkCategory(name string) (int, error) {
	w, err := workloads.ByName(name)
	if err != nil {
		return 0, err
	}
	return int(w.Category), nil
}
