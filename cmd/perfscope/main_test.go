package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/perfscope"
)

// sweep runs the driver with the given worker count and returns the
// stdout table and the report bytes.
func sweep(t *testing.T, parallel string) (string, []byte) {
	t.Helper()
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-bench", "sgemm,BFS", "-designs", "part,part-adaptive",
		"-sms", "1", "-scale", "0.1", "-parallel", parallel, "-out", out,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	return stdout.String(), data
}

// TestSweepReproducibleAcrossWorkers is the acceptance gate: the
// census-only report and the stdout table are byte-identical whatever
// the worker count.
func TestSweepReproducibleAcrossWorkers(t *testing.T) {
	tbl1, rep1 := sweep(t, "1")
	tbl4, rep4 := sweep(t, "4")
	if tbl1 != tbl4 {
		t.Errorf("stdout differs across worker counts:\n--- 1\n%s\n--- 4\n%s", tbl1, tbl4)
	}
	if !bytes.Equal(rep1, rep4) {
		t.Error("report bytes differ across worker counts")
	}

	r, err := perfscope.Read(bytes.NewReader(rep1))
	if err != nil {
		t.Fatalf("report does not validate: %v", err)
	}
	if len(r.Entries) != 4 {
		t.Fatalf("report has %d entries, want 4 (2 benchmarks x 2 designs)", len(r.Entries))
	}
	for i := 1; i < len(r.Entries); i++ {
		a, b := r.Entries[i-1], r.Entries[i]
		if a.Workload > b.Workload || (a.Workload == b.Workload && a.Design >= b.Design) {
			t.Errorf("entries out of canonical order at %d: %s/%s then %s/%s",
				i, a.Workload, a.Design, b.Workload, b.Design)
		}
	}
	for _, e := range r.Entries {
		if e.Census.SMCycles == 0 {
			t.Errorf("%s/%s observed no cycles", e.Workload, e.Design)
		}
		if e.Wall != nil {
			t.Errorf("%s/%s: census-only sweep carries a wall section", e.Workload, e.Design)
		}
	}
	// The stdout table names every cell plus the total row.
	for _, want := range []string{"sgemm", "BFS", "part-adaptive", "total"} {
		if !strings.Contains(tbl1, want) {
			t.Errorf("table missing %q:\n%s", want, tbl1)
		}
	}
}

// TestSweepWallClock: -wallclock attaches wall sections and prints the
// phase split; the report still validates.
func TestSweepWallClock(t *testing.T) {
	out := filepath.Join(t.TempDir(), "report.json")
	var stdout bytes.Buffer
	err := run([]string{
		"-bench", "sgemm", "-designs", "part", "-sms", "1", "-scale", "0.1",
		"-wallclock", "-out", out,
	}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "wall-clock phase split") {
		t.Errorf("no phase split printed:\n%s", stdout.String())
	}
	r, err := perfscope.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 1 || r.Entries[0].Wall == nil {
		t.Fatalf("wallclock sweep lost its wall section: %+v", r.Entries)
	}
	if r.Entries[0].Wall.TotalNS <= 0 {
		t.Error("wall section recorded no time")
	}
}

// TestSweepBadFlags: unknown designs and benchmarks are usage errors.
func TestSweepBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-designs", "warp9"},
		{"-bench", "no-such-bench"},
		{"-parallel", "0"},
		{"-sms", "-1"},
		{"-scale", "0"},
	} {
		var stdout bytes.Buffer
		err := run(args, &stdout)
		if err == nil {
			t.Errorf("args %v accepted", args)
			continue
		}
		if _, ok := err.(usageError); !ok {
			t.Errorf("args %v: error %v is not a usageError", args, err)
		}
	}
}
