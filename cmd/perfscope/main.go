// Command perfscope profiles the simulator itself across the benchmark
// suite: for every workload x design cell it runs the kernels with the
// perfscope census attached and reports how many SM cycles an
// event-driven skip-ahead loop could avoid simulating — the measurement
// that gates the ROADMAP's event-driven rewrite.
//
// Usage:
//
//	perfscope [-bench a,b | empty = all] [-designs mrf-stv,mrf-ntv,part,part-adaptive]
//	          [-sms n] [-scale f] [-seed n] [-parallel n] [-out f.json]
//	          [-wallclock]
//
// The default census-only report is byte-reproducible: the census
// depends only on architectural state, cells run as independent tasks
// on a work-stealing pool (internal/jobs), and the report merges in
// canonical (workload, design) order — so -parallel n writes the same
// bytes as -parallel 1, and equal flags produce equal files forever.
//
// -wallclock additionally times every tick phase (events, fault, issue,
// collect, banks, adaptive, telemetry, energy, record) and attaches the
// per-cell wall section to the report. Wall time is non-deterministic,
// so -wallclock reports are NOT byte-reproducible; leave it off for
// reports that are compared or cached by content.
//
// The stdout table shows, per cell: observed SM cycles, the four census
// classes as percentages (busy / active-no-issue / skippable /
// stalled-unknown), the number of maximal skippable runs with their
// mean length (the jumps an event-driven loop would take), and the
// Amdahl-style projected speedup ceiling.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
	"pilotrf/internal/perfscope"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

// usageError marks a bad flag value, exiting 2 rather than 1.
type usageError struct{ error }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// cell is one workload x design profiling task.
type cell struct {
	w      workloads.Workload
	design string
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("perfscope", flag.ContinueOnError)
	var (
		benchList  = fs.String("bench", "", "comma-separated benchmark names (empty = all)")
		designList = fs.String("designs", "mrf-stv,mrf-ntv,part,part-adaptive", "comma-separated designs to profile")
		sms        = fs.Int("sms", 2, "number of SMs")
		scale      = fs.Float64("scale", 1, "CTA count scale factor")
		seed       = fs.Uint64("seed", 0, "memory-content seed (0 = default)")
		parallel   = fs.Int("parallel", 1, "profile cells concurrently on N pool workers (same bytes as 1)")
		out        = fs.String("out", "", "write the pilotrf-perfscope/v1 JSON report here")
		wallclock  = fs.Bool("wallclock", false, "also time tick phases (non-deterministic; report loses byte-reproducibility)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel <= 0 {
		return usageError{fmt.Errorf("parallel must be positive, got %d", *parallel)}
	}
	if *sms <= 0 {
		return usageError{fmt.Errorf("sms must be positive, got %d", *sms)}
	}
	if *scale <= 0 {
		return usageError{fmt.Errorf("scale must be positive, got %v", *scale)}
	}

	var designs []string
	for _, name := range strings.Split(*designList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if _, err := campaign.ParseDesign(name); err != nil {
			return usageError{err}
		}
		designs = append(designs, name)
	}
	if len(designs) == 0 {
		return usageError{errors.New("no designs selected")}
	}
	var wls []workloads.Workload
	if *benchList == "" {
		wls = workloads.All()
	} else {
		for _, name := range strings.Split(*benchList, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return usageError{err}
			}
			wls = append(wls, w)
		}
	}

	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		outFile = f
	}

	cells := make([]cell, 0, len(wls)*len(designs))
	for _, w := range wls {
		for _, d := range designs {
			cells = append(cells, cell{w: w.Scale(*scale), design: d})
		}
	}

	pool, err := jobs.New(jobs.Config{Workers: *parallel})
	if err != nil {
		return err
	}
	defer pool.Close()
	tasks := make([]jobs.Task, len(cells))
	for i, c := range cells {
		c := c
		tasks[i] = func(context.Context) (interface{}, error) {
			d, err := campaign.ParseDesign(c.design)
			if err != nil {
				return nil, err
			}
			cfg := sim.DefaultConfig().WithDesign(d)
			cfg.NumSMs = *sms
			if *seed != 0 {
				cfg.Seed = *seed
			}
			p := perfscope.New(*wallclock)
			cfg.Perf = p
			g, err := sim.New(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := g.RunKernels(c.w.Name, c.w.Kernels); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", c.w.Name, c.design, err)
			}
			return perfscope.NewEntry(c.w.Name, c.design, p), nil
		}
	}
	batch, err := pool.Submit(context.Background(), tasks)
	if err != nil {
		return err
	}
	results, _ := batch.Wait(context.Background())
	entries := make([]perfscope.Entry, 0, len(results))
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
		entries = append(entries, r.Value.(perfscope.Entry))
	}

	report := perfscope.NewReport(entries)
	printTable(stdout, report)
	if *wallclock {
		printWall(stdout, report)
	}
	if outFile != nil {
		if err := report.WriteJSON(outFile); err != nil {
			outFile.Close()
			return fmt.Errorf("writing %s: %w", *out, err)
		}
		if err := outFile.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d-entry perfscope report to %s\n", len(report.Entries), *out)
	}
	return nil
}

// printTable renders the skip-headroom census, one row per cell plus
// the total.
func printTable(w io.Writer, r *perfscope.Report) {
	fmt.Fprintf(w, "%-10s %-13s %10s %6s %7s %6s %8s %8s %8s %8s\n",
		"bench", "design", "sm-cycles", "busy%", "active%", "skip%", "unknown%", "jumps", "meanjump", "speedup")
	row := func(e perfscope.Entry) {
		c := e.Census
		pct := func(n uint64) float64 {
			if c.SMCycles == 0 {
				return 0
			}
			return 100 * float64(n) / float64(c.SMCycles)
		}
		meanJump := 0.0
		if c.SkipRuns > 0 {
			meanJump = float64(c.Skippable) / float64(c.SkipRuns)
		}
		fmt.Fprintf(w, "%-10s %-13s %10d %6.2f %7.2f %6.2f %8.2f %8d %8.1f %8.3f\n",
			e.Workload, e.Design, c.SMCycles,
			pct(c.Busy), pct(c.ActiveNoIssue), pct(c.Skippable), pct(c.StalledUnknown),
			c.SkipRuns, meanJump, e.ProjectedSpeedup)
	}
	for _, e := range r.Entries {
		row(e)
	}
	row(r.Total)
}

// printWall renders the aggregate per-phase wall-clock split.
func printWall(w io.Writer, r *perfscope.Report) {
	var total int64
	phases := map[string]int64{}
	for _, e := range r.Entries {
		if e.Wall == nil {
			continue
		}
		total += e.Wall.TotalNS
		for name, ns := range e.Wall.PhaseNS {
			phases[name] += ns
		}
	}
	if total == 0 {
		return
	}
	fmt.Fprintf(w, "\nwall-clock phase split (total %.3fs inside instrumented ticks):\n", float64(total)/1e9)
	for i := 0; i < perfscope.NumPhases; i++ {
		name := perfscope.Phase(i).String()
		ns := phases[name]
		fmt.Fprintf(w, "  %-10s %8.3fs %6.2f%%\n", name, float64(ns)/1e9, 100*float64(ns)/float64(total))
	}
}
