package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/dse"
)

// runDSE drives the binary's run() in process and returns exit code,
// stdout, and stderr.
func runDSE(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errb bytes.Buffer
	code := run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// smokeArgs is the CI smoke sweep: two schemes, two workloads, tiny
// scale.
func smokeArgs(extra ...string) []string {
	args := []string{
		"-schemes", "mrf-stv,greener", "-bench", "sgemm,backprop",
		"-scale", "0.02", "-sms", "1",
	}
	return append(args, extra...)
}

// TestRunParallelByteIdentical is the acceptance criterion: the report
// and CSV bytes must be identical at -parallel 1 and -parallel 8.
func TestRunParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	render := func(parallel string) (string, string) {
		jsonPath := filepath.Join(dir, "report-"+parallel+".json")
		csvPath := filepath.Join(dir, "points-"+parallel+".csv")
		code, _, errb := runDSE(t, smokeArgs(
			"-parallel", parallel, "-out", jsonPath, "-csv", csvPath)...)
		if code != 0 {
			t.Fatalf("-parallel %s exited %d: %s", parallel, code, errb)
		}
		j, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		c, err := os.ReadFile(csvPath)
		if err != nil {
			t.Fatal(err)
		}
		return string(j), string(c)
	}
	j1, c1 := render("1")
	j8, c8 := render("8")
	if j1 != j8 {
		t.Errorf("reports differ between -parallel 1 and -parallel 8:\n%s\nvs\n%s", j1, j8)
	}
	if c1 != c8 {
		t.Errorf("CSVs differ between -parallel 1 and -parallel 8:\n%s\nvs\n%s", c1, c8)
	}
}

// TestRunReportValidates: the written report must pass the validating
// reader and carry the swept schemes in order.
func TestRunReportValidates(t *testing.T) {
	jsonPath := filepath.Join(t.TempDir(), "report.json")
	code, out, errb := runDSE(t, smokeArgs("-out", jsonPath)...)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errb)
	}
	if !strings.Contains(out, "Pareto frontier") {
		t.Errorf("stdout missing the frontier summary:\n%s", out)
	}
	f, err := os.Open(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := dse.Read(f)
	if err != nil {
		t.Fatalf("written report fails the validating reader: %v", err)
	}
	if len(rep.Workloads) != 2 {
		t.Errorf("report workloads = %v, want the 2 selected", rep.Workloads)
	}
	schemes := map[string]bool{}
	for _, p := range rep.Points {
		schemes[p.Scheme] = true
	}
	if !schemes["mrf-stv"] || !schemes["greener"] || len(schemes) != 2 {
		t.Errorf("report schemes = %v, want exactly {mrf-stv, greener}", schemes)
	}
}

// TestRunUnknownSchemeUsageError: a bad -schemes entry is a usage
// error (exit 2) whose message lists the valid names.
func TestRunUnknownSchemeUsageError(t *testing.T) {
	code, _, errb := runDSE(t, "-schemes", "mrf-stv,warpdrive")
	if code != 2 {
		t.Fatalf("exit %d, want 2; stderr: %s", code, errb)
	}
	for _, want := range []string{"warpdrive", "mrf-stv", "part-adaptive", "rfc-hints"} {
		if !strings.Contains(errb, want) {
			t.Errorf("usage error %q does not mention %q", errb, want)
		}
	}
}

func TestRunBadParallelUsageError(t *testing.T) {
	if code, _, _ := runDSE(t, "-parallel", "0"); code != 2 {
		t.Fatalf("-parallel 0 exited %d, want 2", code)
	}
}

func TestRunUnknownWorkloadFails(t *testing.T) {
	code, _, errb := runDSE(t, "-bench", "nonesuch", "-schemes", "mrf-stv", "-scale", "0.02")
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, errb)
	}
}
