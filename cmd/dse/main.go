// Command dse sweeps the registered register-file design schemes
// across their knob grids (partition sizes, RFC entry counts, gating
// granularities, supply voltages) and the Table I workload pool, then
// reports the energy-vs-IPC Pareto frontier.
//
// Usage:
//
//	dse [-schemes a,b,...] [-bench w1,w2,...] [-scale f] [-sms n]
//	    [-parallel n] [-out report.json] [-csv points.csv] [-replay=false]
//
// Every grid point runs with the energy ledger attached and its
// conservation check enforced; default-knob points additionally replay
// their first workload against a flight recording. The JSON report
// ("pilotrf-dse/v1") and the CSV are canonical: the bytes do not depend
// on -parallel, which the CI smoke job verifies by diffing two runs.
//
// Exit codes: 0 success, 1 sweep or I/O failure, 2 usage error (the
// valid scheme names are listed).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pilotrf/internal/design"
	"pilotrf/internal/dse"
	"pilotrf/internal/jobs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run executes the sweep; factored from main so the tests drive the
// whole flag-to-report path in process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dse", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		schemes  = fs.String("schemes", "", "comma-separated design scheme names (empty = all registered)")
		bench    = fs.String("bench", "", "comma-separated workload names (empty = the whole Table I pool)")
		scale    = fs.Float64("scale", 1, "workload CTA scale factor")
		sms      = fs.Int("sms", 1, "simulated SMs")
		parallel = fs.Int("parallel", jobs.DefaultWorkers(), "worker count (the report is byte-identical at any value)")
		out      = fs.String("out", "", "write the pilotrf-dse/v1 JSON report to this file (empty = stdout table only)")
		csvPath  = fs.String("csv", "", "write every point as CSV (with a pareto column) to this file")
		replay   = fs.Bool("replay", true, "replay each default-knob point's first workload against its flight recording")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel <= 0 {
		fmt.Fprintf(stderr, "-parallel must be >= 1, got %d\n", *parallel)
		return 2
	}
	names, err := splitNames(*schemes)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}

	rep, err := dse.Sweep(context.Background(), dse.Options{
		Schemes:   names,
		Workloads: splitList(*bench),
		Scale:     *scale,
		SMs:       *sms,
		Workers:   *parallel,
		Replay:    *replay,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	fmt.Fprintf(stdout, "=== Design-space exploration: %d points, %d workloads, baseline %s ===\n",
		len(rep.Points), len(rep.Workloads), rep.Baseline)
	if err := dse.WriteTable(stdout, rep); err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	frontier := dse.Frontier(rep.Points)
	fmt.Fprintf(stdout, "  %d of %d points on the Pareto frontier\n", len(frontier), len(rep.Points))

	if *out != "" {
		if err := writeFile(*out, func(f *os.File) error { return dse.Write(f, rep) }); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "report written to %s\n", *out)
	}
	if *csvPath != "" {
		if err := writeFile(*csvPath, func(f *os.File) error { return dse.WriteCSV(f, rep) }); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "CSV written to %s\n", *csvPath)
	}
	return 0
}

// splitNames parses the -schemes list, failing fast (exit 2 at the
// caller) with the valid names when one is unknown.
func splitNames(s string) ([]string, error) {
	names := splitList(s)
	for _, n := range names {
		if _, ok := design.Lookup(n); !ok {
			return nil, fmt.Errorf("unknown scheme %q (valid: %s)", n, strings.Join(design.SortedNames(), ", "))
		}
	}
	return names, nil
}

// splitList splits a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

// writeFile creates path and streams fn into it.
func writeFile(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
