package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
)

// fakeCoordinator mimics the pilotserve /v1/jobs contract this client
// speaks: submit returns a fresh job id, the stream replays scripted
// NDJSON, and behavior knobs inject the failure modes the client must
// survive.
type fakeCoordinator struct {
	mu      sync.Mutex
	submits int
	report  campaign.Report
	// forget404 makes the first stream 404 (restarted coordinator that
	// lost its job table) before behaving normally.
	forget404 bool
	// fail makes every job end "failed" with this message.
	fail string
}

func (f *fakeCoordinator) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		f.mu.Lock()
		f.submits++
		n := f.submits
		f.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"jobs":[{"id":"job-%d","units":4}]}`, n)
	})
	mux.HandleFunc("/v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
		f.mu.Lock()
		forget := f.forget404
		f.forget404 = false
		failMsg := f.fail
		rep := f.report
		f.mu.Unlock()
		if forget {
			http.Error(w, "unknown job "+id, http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		_ = enc.Encode(map[string]interface{}{"id": id, "state": "running", "done": 2, "total": 4})
		if failMsg != "" {
			_ = enc.Encode(map[string]interface{}{"id": id, "state": "failed", "done": 2, "total": 4, "error": failMsg})
			return
		}
		_ = enc.Encode(map[string]interface{}{"id": id, "state": "done", "done": 4, "total": 4, "report": rep})
	})
	return mux
}

// smallReport computes a real one-cell report for the fake coordinator
// to serve, so client-side bytes compare against genuine campaign
// output.
func smallReport(t *testing.T) campaign.Report {
	t.Helper()
	pool, err := jobs.New(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	rep, err := campaign.Run(context.Background(), campaign.Spec{
		Benchmarks: []string{"sgemm"}, Designs: []string{"part-adaptive"},
		Protect: []string{"none"}, Trials: 3, Seed: 42, SMs: 1,
	}, campaign.Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestRemoteModeByteIdenticalOutput: -coordinator output must be
// byte-identical to a local run of the same flags.
func TestRemoteModeByteIdenticalOutput(t *testing.T) {
	fake := &fakeCoordinator{report: smallReport(t)}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()

	dir := t.TempDir()
	local := filepath.Join(dir, "local.json")
	remote := filepath.Join(dir, "remote.json")
	var out bytes.Buffer
	if err := run([]string{"-bench", "sgemm", "-designs", "part-adaptive", "-protect", "none",
		"-trials", "3", "-seed", "42", "-sms", "1", "-out", local}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-bench", "sgemm", "-designs", "part-adaptive", "-protect", "none",
		"-trials", "3", "-seed", "42", "-sms", "1", "-coordinator", ts.URL, "-out", remote}, &out); err != nil {
		t.Fatal(err)
	}
	lb, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, rb) {
		t.Fatalf("remote report differs from local:\n%s\n---\n%s", rb, lb)
	}
}

// TestRemoteModeResubmitsAfterRestart: a 404'd job id (coordinator
// restarted) triggers a resubmission, not a failure.
func TestRemoteModeResubmitsAfterRestart(t *testing.T) {
	fake := &fakeCoordinator{report: smallReport(t), forget404: true}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()

	rep, _, err := runRemote(ts.URL, campaign.Spec{Benchmarks: []string{"sgemm"},
		Designs: []string{"part-adaptive"}, Protect: []string{"none"}, Trials: 3, Seed: 42, SMs: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 1 {
		t.Fatalf("report has %d cells, want 1", len(rep.Cells))
	}
	fake.mu.Lock()
	submits := fake.submits
	fake.mu.Unlock()
	if submits != 2 {
		t.Fatalf("submits = %d, want 2 (original + post-restart resubmission)", submits)
	}
}

// TestRemoteModeTerminalFailureDoesNotRetry: a job that genuinely
// failed (poison cell) surfaces its error without resubmitting.
func TestRemoteModeTerminalFailureDoesNotRetry(t *testing.T) {
	fake := &fakeCoordinator{fail: "cell 3 is poison: simulator assertion"}
	ts := httptest.NewServer(fake.handler())
	defer ts.Close()

	_, _, err := runRemote(ts.URL, campaign.Spec{Benchmarks: []string{"sgemm"},
		Designs: []string{"part-adaptive"}, Protect: []string{"none"}, Trials: 3, Seed: 42, SMs: 1}, nil)
	if err == nil {
		t.Fatal("failed job reported success")
	}
	if !strings.Contains(err.Error(), "poison") {
		t.Fatalf("error lost the job's failure message: %v", err)
	}
	fake.mu.Lock()
	submits := fake.submits
	fake.mu.Unlock()
	if submits != 1 {
		t.Fatalf("submits = %d, want 1 (terminal failures must not resubmit)", submits)
	}
}
