package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/trace"
)

// TestCampaignTraceSpansFlag: -trace-spans writes a readable, valid
// pilotrf-spans/v1 recording whose deterministic projection is
// byte-identical at -parallel 1 and -parallel 8, and -trace-perfetto
// writes a trace_event document Perfetto can load.
func TestCampaignTraceSpansFlag(t *testing.T) {
	dir := t.TempDir()
	seq := filepath.Join(dir, "seq.ndjson")
	par := filepath.Join(dir, "par.ndjson")
	perf := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	if err := run(campaignArgs("-parallel", "1", "-out", filepath.Join(dir, "a.json"),
		"-trace-spans", seq), &out); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run(campaignArgs("-parallel", "8", "-out", filepath.Join(dir, "b.json"),
		"-trace-spans", par, "-trace-perfetto", perf), &out); err != nil {
		t.Fatalf("parallel run: %v", err)
	}

	seqSpans, err := trace.ReadSpansFile(seq)
	if err != nil {
		t.Fatalf("sequential spans unreadable: %v", err)
	}
	parSpans, err := trace.ReadSpansFile(par)
	if err != nil {
		t.Fatalf("parallel spans unreadable: %v", err)
	}
	if _, err := trace.BuildTree(parSpans); err != nil {
		t.Fatalf("recorded tree invalid: %v", err)
	}

	// Wall-clock sections differ run to run; the deterministic
	// projection must not.
	var sb, pb bytes.Buffer
	if err := trace.WriteSpans(&sb, trace.StripWall(seqSpans)); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteSpans(&pb, trace.StripWall(parSpans)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sb.Bytes(), pb.Bytes()) {
		t.Fatalf("stripped span tree differs between -parallel 1 and 8:\n--- 1 ---\n%s\n--- 8 ---\n%s", sb.Bytes(), pb.Bytes())
	}

	pfBytes, err := os.ReadFile(perf)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(pfBytes, &doc); err != nil {
		t.Fatalf("perfetto output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < len(parSpans) {
		t.Fatalf("perfetto trace has %d events for %d spans", len(doc.TraceEvents), len(parSpans))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
}

// TestCampaignVerboseCacheSummary: -v ends the run with one cache
// summary line whose numbers flip from all-misses to all-hits on the
// warm pass.
func TestCampaignVerboseCacheSummary(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	var cold, warm bytes.Buffer
	if err := run(campaignArgs("-v", "-cache-dir", cacheDir, "-out", filepath.Join(dir, "a.json")), &cold); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(campaignArgs("-v", "-cache-dir", cacheDir, "-out", filepath.Join(dir, "b.json")), &warm); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldLine := lastLine(cold.String())
	warmLine := lastLine(warm.String())
	// 1 golden + 3 cells per run.
	if !strings.Contains(coldLine, "0 hits, 4 misses (0 corrupt), 4 writes") {
		t.Errorf("cold cache summary %q, want 0 hits / 4 misses / 4 writes", coldLine)
	}
	if !strings.Contains(warmLine, "4 hits, 0 misses (0 corrupt), 0 writes") {
		t.Errorf("warm cache summary %q, want 4 hits / 0 misses / 0 writes", warmLine)
	}
	for _, line := range []string{coldLine, warmLine} {
		if !strings.HasPrefix(line, "cache "+cacheDir+":") {
			t.Errorf("summary line %q does not name the cache dir", line)
		}
	}

	// Without -cache-dir (or without -v) no summary line appears.
	var plain bytes.Buffer
	if err := run(campaignArgs("-v", "-out", filepath.Join(dir, "c.json")), &plain); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plain.String(), "cache ") {
		t.Error("-v without -cache-dir printed a cache summary")
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}
