package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"pilotrf/internal/campaign"
	"pilotrf/internal/fleet"
)

// remoteStatus mirrors pilotserve's NDJSON progress line (the subset
// this client reads).
type remoteStatus struct {
	ID     string           `json:"id"`
	State  string           `json:"state"`
	Done   int              `json:"done"`
	Total  int              `json:"total"`
	Report *campaign.Report `json:"report,omitempty"`
	Error  string           `json:"error,omitempty"`
}

// remoteSubmitResponse mirrors pilotserve's POST /v1/jobs response.
type remoteSubmitResponse struct {
	Jobs []struct {
		ID    string `json:"id"`
		Units int    `json:"units"`
	} `json:"jobs"`
}

// runRemote executes the campaign on a pilotserve coordinator instead
// of the local pool: submit the spec as a one-job batch, stream its
// NDJSON progress to completion, and return the report — which is
// byte-identical to a local run of the same spec, that being the
// fleet's core guarantee.
//
// The client survives a coordinator restart: a connection refused, a
// broken stream, or a 404 for the in-flight job id (the restarted
// process minted fresh ids) all resubmit the spec under the shared
// retry/backoff policy. Cells finished before the crash replay from the
// coordinator's cache, so a resubmission redoes only the gap.
func runRemote(coordinator string, spec campaign.Spec, progress io.Writer) (campaign.Report, string, error) {
	body, err := json.Marshal(struct {
		Jobs []campaign.Spec `json:"jobs"`
	}{Jobs: []campaign.Spec{spec}})
	if err != nil {
		return campaign.Report{}, "", err
	}
	// One budget spans the whole conversation with the coordinator:
	// submissions, stream re-attachments, and resubmissions after a
	// restart all draw from it, so a dead coordinator fails the client
	// in bounded time.
	bo := fleet.Policy{Budget: 2 * time.Minute}.Start()
	for {
		jobID, err := submitRemote(coordinator, body)
		if err == nil {
			var rep *campaign.Report
			rep, err = streamRemote(coordinator, jobID, progress)
			if err == nil {
				return *rep, jobID, nil
			}
			var terminal *remoteJobError
			if asRemoteJobError(err, &terminal) {
				// The job itself failed — the campaign is broken (poison
				// cell, bad spec), not the transport. Do not resubmit.
				return campaign.Report{}, "", fmt.Errorf("remote campaign failed: %s", terminal.msg)
			}
		}
		d, ok := bo.Next()
		if !ok {
			return campaign.Report{}, "", fmt.Errorf("coordinator %s unreachable: %w", coordinator, err)
		}
		fmt.Fprintf(os.Stderr, "coordinator hiccup (%v); retrying in %v\n", err, d)
		time.Sleep(d)
	}
}

// remoteJobError marks a terminal job failure reported by the
// coordinator — retrying would fail identically.
type remoteJobError struct{ msg string }

// Error returns the coordinator's failure message verbatim.
func (e *remoteJobError) Error() string { return e.msg }

func asRemoteJobError(err error, out **remoteJobError) bool {
	if e, ok := err.(*remoteJobError); ok {
		*out = e
		return true
	}
	return false
}

// submitRemote posts the one-job batch and returns the job id.
func submitRemote(coordinator string, body []byte) (string, error) {
	resp, err := http.Post(coordinator+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	buf, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, firstLine(buf))
	}
	var sub remoteSubmitResponse
	if err := json.Unmarshal(buf, &sub); err != nil || len(sub.Jobs) != 1 || sub.Jobs[0].ID == "" {
		return "", fmt.Errorf("submit: malformed response %q", firstLine(buf))
	}
	return sub.Jobs[0].ID, nil
}

// streamRemote follows the job's NDJSON progress to its terminal line.
// A nil error means the report is complete; *remoteJobError means the
// job failed for real; any other error is a transport problem worth a
// resubmit.
func streamRemote(coordinator, jobID string, progress io.Writer) (*campaign.Report, error) {
	resp, err := http.Get(coordinator + "/v1/jobs/" + jobID)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		// The coordinator restarted and lost its in-memory job table;
		// the caller resubmits (finished cells replay from its cache).
		return nil, fmt.Errorf("job %s unknown after coordinator restart", jobID)
	}
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("stream %s: HTTP %d: %s", jobID, resp.StatusCode, firstLine(buf))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	lastDone := -1
	for sc.Scan() {
		var st remoteStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			return nil, fmt.Errorf("stream %s: bad line %q: %w", jobID, sc.Text(), err)
		}
		if progress != nil && st.Total > 0 && st.Done != lastDone {
			fmt.Fprintf(progress, "remote %s: %d/%d\n", jobID, st.Done, st.Total)
			lastDone = st.Done
		}
		switch st.State {
		case "done":
			if st.Report == nil {
				return nil, fmt.Errorf("stream %s: done without report", jobID)
			}
			return st.Report, nil
		case "failed":
			return nil, &remoteJobError{msg: st.Error}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("stream %s interrupted: %w", jobID, err)
	}
	return nil, fmt.Errorf("stream %s ended without a terminal state", jobID)
}

// fetchRemoteTrace downloads the finished job's span tree from the
// coordinator in the requested format ("" for pilotrf-spans/v1 NDJSON,
// "perfetto" for trace_event JSON) and writes it to path.
func fetchRemoteTrace(coordinator, jobID, format, path string) error {
	url := coordinator + "/v1/jobs/" + jobID + "/trace"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		buf, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("trace %s: HTTP %d: %s", jobID, resp.StatusCode, firstLine(buf))
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.Copy(f, resp.Body); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// firstLine trims a response body to its first line for error messages.
func firstLine(b []byte) string {
	if i := bytes.IndexByte(b, '\n'); i >= 0 {
		b = b[:i]
	}
	if len(b) > 200 {
		b = b[:200]
	}
	return string(b)
}
