// Command faultcampaign runs seeded soft-error injection campaigns over
// the register-file designs and protection schemes and classifies every
// trial's outcome:
//
//	masked                  — faults struck but never corrupted consumed
//	                          dataflow (dead cells, overwrites, no strikes)
//	corrected               — a protection code corrected or retried at
//	                          least one strike; dataflow stayed golden
//	detected-unrecoverable  — parity detection exhausted its warp-level
//	                          retries and the kernel aborted cleanly
//	sdc                     — silent data corruption: the run completed
//	                          but its dataflow digest diverged from the
//	                          fault-free golden run, or the corrupted
//	                          control flow span past the watchdog budget
//	                          (50x the golden run's cycles)
//
// SDC detection compares the flight recorder's commutative read digest
// against a fault-free golden run of the same (design, workload), so
// timing drift from retries never masquerades as corruption.
//
// Usage:
//
//	faultcampaign [-bench csv] [-designs csv] [-protect csv]
//	              [-trials n] [-rate f] [-seed n] [-scale f] [-sms n]
//	              [-out report.json] [-v]
//
// The whole campaign derives from -seed: equal flags produce a
// byte-identical report.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pilotrf/internal/fault"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

// Schema identifies the report format; bump on incompatible change.
const Schema = "pilotrf-faultcampaign/v1"

// Outcomes counts trial classifications within one campaign cell.
type Outcomes struct {
	Masked                int `json:"masked"`
	Corrected             int `json:"corrected"`
	DetectedUnrecoverable int `json:"detected_unrecoverable"`
	SDC                   int `json:"sdc"`
}

// Cell is one (design, protection, workload) campaign cell: trial
// classifications plus the aggregate fault counters across its trials.
type Cell struct {
	Design       string   `json:"design"`
	Protection   string   `json:"protection"`
	Workload     string   `json:"workload"`
	Outcomes     Outcomes `json:"outcomes"`
	Injected     uint64   `json:"injected"`
	Corrected    uint64   `json:"corrected"`
	Retries      uint64   `json:"retries"`
	SilentReads  uint64   `json:"silent_reads"`
	CAMCorrupted uint64   `json:"cam_corrupted"`
}

// Report is the versioned campaign result.
type Report struct {
	Schema string  `json:"schema"`
	Rate   float64 `json:"rate"`
	Seed   uint64  `json:"seed"`
	Trials int     `json:"trials"`
	Scale  float64 `json:"scale"`
	SMs    int     `json:"sms"`
	Cells  []Cell  `json:"cells"`
}

// usageError marks a bad flag value, exiting 2 rather than the runtime
// failures' 1.
type usageError struct{ error }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// parseDesign maps the CLI design names (shared with pilotsim) to designs.
func parseDesign(name string) (regfile.Design, error) {
	switch name {
	case "mrf-stv":
		return regfile.DesignMonolithicSTV, nil
	case "mrf-ntv":
		return regfile.DesignMonolithicNTV, nil
	case "part":
		return regfile.DesignPartitioned, nil
	case "part-adaptive":
		return regfile.DesignPartitionedAdaptive, nil
	default:
		return 0, fmt.Errorf("unknown design %q", name)
	}
}

// trialSeed derives the fault seed of one trial from the campaign seed.
// The injector further salts per SM, so every (trial, SM) process is an
// independent, reproducible stream.
func trialSeed(seed uint64, trial int) uint64 {
	return seed + uint64(trial+1)*0xA24BAED4963EE407
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faultcampaign", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "comma-separated benchmark names (empty = all)")
		designs   = fs.String("designs", "mrf-ntv,part,part-adaptive", "comma-separated designs (mrf-stv | mrf-ntv | part | part-adaptive)")
		protect   = fs.String("protect", "none,parity,secded,paper", "comma-separated protection schemes (none | parity | secded | paper)")
		trials    = fs.Int("trials", 5, "seeded injection trials per cell")
		rate      = fs.Float64("rate", 2e-11, "accelerated soft-error rate (upsets/bit/cycle at STV)")
		seed      = fs.Uint64("seed", 1, "campaign seed; the whole report derives from it")
		scale     = fs.Float64("scale", 0.05, "CTA count scale factor")
		sms       = fs.Int("sms", 2, "number of SMs")
		outPath   = fs.String("out", "", "write the JSON report here (empty = stdout)")
		verbose   = fs.Bool("v", false, "print a per-cell summary table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *trials <= 0 {
		return usageError{fmt.Errorf("trials must be positive, got %d", *trials)}
	}
	if (fault.Config{Rate: *rate}).Validate() != nil || *rate == 0 {
		return usageError{fmt.Errorf("rate must be a positive finite upsets/bit/cycle, got %v", *rate)}
	}

	var ds []regfile.Design
	var dNames []string
	for _, name := range strings.Split(*designs, ",") {
		name = strings.TrimSpace(name)
		d, err := parseDesign(name)
		if err != nil {
			return usageError{err}
		}
		ds = append(ds, d)
		dNames = append(dNames, name)
	}
	var schemes []fault.Scheme
	var schemeNames []string
	for _, name := range strings.Split(*protect, ",") {
		name = strings.TrimSpace(name)
		s, err := fault.ParseScheme(name)
		if err != nil {
			return usageError{err}
		}
		schemes = append(schemes, s)
		schemeNames = append(schemeNames, name)
	}
	var wls []workloads.Workload
	if *benchName == "" {
		wls = workloads.All()
	} else {
		for _, name := range strings.Split(*benchName, ",") {
			w, err := workloads.ByName(strings.TrimSpace(name))
			if err != nil {
				return usageError{err}
			}
			wls = append(wls, w)
		}
	}

	rep := Report{Schema: Schema, Rate: *rate, Seed: *seed, Trials: *trials, Scale: *scale, SMs: *sms}
	if *verbose {
		fmt.Fprintf(stdout, "%-14s %-8s %-10s %7s %7s %7s %7s %9s\n",
			"design", "protect", "bench", "masked", "corr", "unrec", "sdc", "injected")
	}
	for di, d := range ds {
		cfg := sim.DefaultConfig().WithDesign(d)
		cfg.NumSMs = *sms
		for _, w := range wls {
			w = w.Scale(*scale)
			golden, goldenCycles, err := goldenRun(cfg, w)
			if err != nil {
				return fmt.Errorf("golden %v/%s: %w", d, w.Name, err)
			}
			for si, scheme := range schemes {
				cell, err := runCell(cfg, w, golden, goldenCycles, scheme, *rate, *seed, *trials)
				if err != nil {
					return fmt.Errorf("%v/%s/%s: %w", d, schemeNames[si], w.Name, err)
				}
				cell.Design = dNames[di]
				cell.Protection = schemeNames[si]
				rep.Cells = append(rep.Cells, cell)
				if *verbose {
					o := cell.Outcomes
					fmt.Fprintf(stdout, "%-14s %-8s %-10s %7d %7d %7d %7d %9d\n",
						cell.Design, cell.Protection, cell.Workload,
						o.Masked, o.Corrected, o.DetectedUnrecoverable, o.SDC, cell.Injected)
				}
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath == "" {
		_, err := stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %d cells to %s\n", len(rep.Cells), *outPath)
	return nil
}

// goldenRun executes the workload fault-free and returns its dataflow
// digest — the reference every trial of the same (design, workload)
// compares against — plus its total cycle count, which sizes the
// trials' watchdog budget.
func goldenRun(cfg sim.Config, w workloads.Workload) (*fault.DigestProbe, int64, error) {
	probe := fault.NewDigestProbe()
	cfg.Record = probe
	g, err := sim.New(cfg)
	if err != nil {
		return nil, 0, err
	}
	rs, err := g.RunKernels(w.Name, w.Kernels)
	if err != nil {
		return nil, 0, err
	}
	return probe, rs.TotalCycles(), nil
}

// watchdogBudget bounds a faulty trial's runtime: a fault that corrupts
// control flow can spin a kernel forever, and without a tight budget a
// single runaway trial stalls the whole campaign for the simulator's
// default 200M-cycle limit. 50x the fault-free run plus slack is far
// above any legitimate retry overhead (bounded re-issues at a few
// cycles each) while catching runaways in milliseconds.
func watchdogBudget(goldenCycles int64) int64 {
	return 50*goldenCycles + 10_000
}

// runCell executes the trials of one campaign cell and classifies each.
func runCell(cfg sim.Config, w workloads.Workload, golden *fault.DigestProbe, goldenCycles int64, scheme fault.Scheme, rate float64, seed uint64, trials int) (Cell, error) {
	cell := Cell{Workload: w.Name}
	cfg.MaxCycles = watchdogBudget(goldenCycles)
	for t := 0; t < trials; t++ {
		probe := fault.NewDigestProbe()
		cfg.Record = probe
		cfg.Protect = scheme
		cfg.Fault = &fault.Config{Rate: rate, Seed: trialSeed(seed, t)}
		g, err := sim.New(cfg)
		if err != nil {
			return cell, err
		}
		rs, err := g.RunKernels(w.Name, w.Kernels)
		st := rs.FaultTotals()
		cell.Injected += st.TotalInjected()
		cell.Corrected += st.Corrected
		cell.Retries += st.DetectedRetry
		cell.SilentReads += st.SilentReads
		cell.CAMCorrupted += st.CAMCorrupted

		var ue *fault.UnrecoverableError
		switch {
		case errors.As(err, &ue):
			cell.Outcomes.DetectedUnrecoverable++
		case errors.Is(err, sim.ErrCycleLimit):
			// A fault corrupted control flow into a runaway loop; the
			// watchdog caught it. Nothing detected it architecturally,
			// so it is silent corruption, not graceful degradation.
			cell.Outcomes.SDC++
		case err != nil:
			// Anything but a clean fault abort is a campaign bug.
			return cell, err
		case diverged(probe, golden):
			cell.Outcomes.SDC++
		case st.Corrected+st.RetrySuccess+st.CAMRepaired > 0:
			cell.Outcomes.Corrected++
		default:
			cell.Outcomes.Masked++
		}
	}
	return cell, nil
}

// diverged reports whether the trial's dataflow digest differs from the
// golden run on any kernel.
func diverged(probe, golden *fault.DigestProbe) bool {
	_, div := probe.Diverged(golden)
	return div
}
