// Command faultcampaign runs seeded soft-error injection campaigns over
// the register-file designs and protection schemes and classifies every
// trial's outcome:
//
//	masked                  — faults struck but never corrupted consumed
//	                          dataflow (dead cells, overwrites, no strikes)
//	corrected               — a protection code corrected or retried at
//	                          least one strike; dataflow stayed golden
//	detected-unrecoverable  — parity detection exhausted its warp-level
//	                          retries and the kernel aborted cleanly
//	sdc                     — silent data corruption: the run completed
//	                          but its dataflow digest diverged from the
//	                          fault-free golden run, or the corrupted
//	                          control flow span past the watchdog budget
//	                          (50x the golden run's cycles)
//
// SDC detection compares the flight recorder's commutative read digest
// against a fault-free golden run of the same (design, workload), so
// timing drift from retries never masquerades as corruption.
//
// Usage:
//
//	faultcampaign [-bench csv] [-designs csv] [-protect csv]
//	              [-trials n] [-rate f] [-seed n] [-scale f] [-sms n]
//	              [-parallel n] [-cache-dir dir] [-coordinator url]
//	              [-trace-spans spans.ndjson] [-trace-perfetto trace.json]
//	              [-out report.json] [-v]
//
// -coordinator runs the campaign on a pilotserve coordinator's worker
// fleet instead of the local pool: the spec is submitted as a job, the
// NDJSON progress is streamed, and the resulting report is
// byte-identical to a local run of the same flags (the fleet merges
// remotely computed cells in the same canonical order). The client
// rides out coordinator restarts by resubmitting — cells completed
// before a crash replay from the coordinator's cache. -trace-spans and
// -trace-perfetto fetch the job's span tree from the coordinator.
//
// The golden runs and every cell's trials are independent simulations;
// -parallel runs them on a work-stealing pool (internal/jobs) with one
// worker per core by default. The merge is in canonical submission
// order, so the report is byte-identical to -parallel 1 for the same
// flags. -cache-dir persists golden digests and finished cells under
// content-addressed keys: re-sweeps with overlapping grids and
// campaigns interrupted partway resume instead of recomputing, and a
// corrupt cache entry silently degrades to recomputation.
//
// The whole campaign derives from -seed: equal flags produce a
// byte-identical report.
//
// -trace-spans records the campaign's span tree (golden runs, cells,
// trials, pool tasks, cache annotations) as pilotrf-spans/v1 NDJSON;
// the span ids and parentage are derived from the campaign spec, so
// the tree is identical at any -parallel, while wall-clock timings
// ride in clearly separated nondeterministic sections. -trace-perfetto
// additionally converts the same recording to Chrome/Perfetto
// trace_event JSON for ui.perfetto.dev.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
	"pilotrf/internal/trace"
)

// Schema identifies the report format; bump on incompatible change.
const Schema = campaign.Schema

// The report types live in internal/campaign (shared with the job
// server); the aliases keep this command's public shape unchanged.
type (
	// Report is the versioned campaign result.
	Report = campaign.Report
	// Cell is one (design, protection, workload) campaign cell.
	Cell = campaign.Cell
	// Outcomes counts trial classifications within one cell.
	Outcomes = campaign.Outcomes
)

// usageError marks a bad flag value, exiting 2 rather than the runtime
// failures' 1.
type usageError struct{ error }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

// splitCSV splits a comma-separated flag into trimmed names.
func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("faultcampaign", flag.ContinueOnError)
	var (
		benchName = fs.String("bench", "", "comma-separated benchmark names (empty = all)")
		designs   = fs.String("designs", "mrf-ntv,part,part-adaptive", "comma-separated designs (mrf-stv | mrf-ntv | part | part-adaptive)")
		protect   = fs.String("protect", "none,parity,secded,paper", "comma-separated protection schemes (none | parity | secded | paper)")
		trials    = fs.Int("trials", 5, "seeded injection trials per cell")
		rate      = fs.Float64("rate", 2e-11, "accelerated soft-error rate (upsets/bit/cycle at STV)")
		seed      = fs.Uint64("seed", 1, "campaign seed; the whole report derives from it")
		scale     = fs.Float64("scale", 0.05, "CTA count scale factor")
		sms       = fs.Int("sms", 2, "number of SMs")
		parallel  = fs.Int("parallel", jobs.DefaultWorkers(), "worker count for golden runs and trials (1 = sequential; same bytes either way)")
		cacheDir  = fs.String("cache-dir", "", "persist golden runs and finished cells here (content-addressed; corrupt entries recompute)")
		coordURL  = fs.String("coordinator", "", "run the campaign on this pilotserve coordinator (-role coordinator) instead of locally; the report is byte-identical either way")
		outPath   = fs.String("out", "", "write the JSON report here (empty = stdout)")
		spansPath = fs.String("trace-spans", "", "write the campaign span tree here as pilotrf-spans/v1 NDJSON")
		perfPath  = fs.String("trace-perfetto", "", "write the campaign span tree here as Perfetto trace_event JSON")
		verbose   = fs.Bool("v", false, "print a per-cell summary table and a cache summary line")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel <= 0 {
		return usageError{fmt.Errorf("parallel must be positive, got %d", *parallel)}
	}

	spec := campaign.Spec{
		Benchmarks: splitCSV(*benchName),
		Designs:    splitCSV(*designs),
		Protect:    splitCSV(*protect),
		Trials:     *trials,
		Rate:       *rate,
		Seed:       *seed,
		Scale:      *scale,
		SMs:        *sms,
	}
	// Spec zero values select defaults, so explicitly bad flag values
	// must be rejected here as usage errors before any simulation runs.
	if *trials <= 0 {
		return usageError{fmt.Errorf("trials must be positive, got %d", *trials)}
	}
	if *rate <= 0 {
		return usageError{fmt.Errorf("rate must be a positive finite upsets/bit/cycle, got %v", *rate)}
	}
	if err := spec.Validate(); err != nil {
		return usageError{err}
	}

	cellRow := func(c campaign.Cell) {
		o := c.Outcomes
		fmt.Fprintf(stdout, "%-14s %-8s %-10s %7d %7d %7d %7d %9d\n",
			c.Design, c.Protection, c.Workload,
			o.Masked, o.Corrected, o.DetectedUnrecoverable, o.SDC, c.Injected)
	}
	cellHeader := func() {
		fmt.Fprintf(stdout, "%-14s %-8s %-10s %7s %7s %7s %7s %9s\n",
			"design", "protect", "bench", "masked", "corr", "unrec", "sdc", "injected")
	}

	var rep Report
	var cache *jobs.Cache
	if *coordURL != "" {
		// Remote mode: the campaign runs on a pilotserve coordinator's
		// fleet; -parallel and -cache-dir govern local execution only and
		// are ignored here (the coordinator owns both).
		var progress io.Writer
		if *verbose {
			progress = os.Stderr
		}
		var jobID string
		var err error
		rep, jobID, err = runRemote(*coordURL, spec, progress)
		if err != nil {
			return err
		}
		if *spansPath != "" {
			if err := fetchRemoteTrace(*coordURL, jobID, "", *spansPath); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote remote spans to %s\n", *spansPath)
		}
		if *perfPath != "" {
			if err := fetchRemoteTrace(*coordURL, jobID, "perfetto", *perfPath); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote remote Perfetto trace to %s\n", *perfPath)
		}
		if *verbose {
			// Remote cells arrive all at once with the report; the table
			// is identical to a local run's because the order is
			// canonical either way.
			cellHeader()
			for _, c := range rep.Cells {
				cellRow(c)
			}
		}
	} else {
		if *cacheDir != "" {
			var err error
			if cache, err = jobs.OpenCache(*cacheDir); err != nil {
				return err
			}
		}
		pool, err := jobs.New(jobs.Config{Workers: *parallel})
		if err != nil {
			return err
		}
		defer pool.Close()

		opt := campaign.Options{Pool: pool, Cache: cache}
		var rec *trace.Recorder
		if *spansPath != "" || *perfPath != "" {
			// Wall-clock sections on: the CLI recording is for humans
			// reading waterfalls, and the deterministic projection is still
			// recoverable via trace.StripWall.
			rec = trace.NewRecorder(true)
			opt.Trace = rec
		}
		if *verbose {
			cellHeader()
			opt.CellDone = cellRow
		}
		rep, err = campaign.Run(context.Background(), spec, opt)
		if err != nil {
			return err
		}

		if rec != nil {
			spans := rec.Spans()
			if *spansPath != "" {
				if err := trace.WriteSpansFile(*spansPath, spans); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote %d spans to %s\n", len(spans), *spansPath)
			}
			if *perfPath != "" {
				f, err := os.Create(*perfPath)
				if err != nil {
					return err
				}
				if err := trace.WritePerfetto(f, spans); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Fprintf(os.Stderr, "wrote Perfetto trace to %s\n", *perfPath)
			}
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %d cells to %s\n", len(rep.Cells), *outPath)
	} else if _, err := stdout.Write(buf); err != nil {
		return err
	}
	if *verbose && cache != nil {
		st := cache.Stats()
		fmt.Fprintf(stdout, "cache %s: %d hits, %d misses (%d corrupt), %d writes\n",
			cache.Dir(), st.Hits, st.Misses, st.Corrupt, st.Puts)
	}
	return nil
}
