package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// campaignArgs is a small two-cell campaign that still exercises every
// classification path cheaply.
func campaignArgs(extra ...string) []string {
	base := []string{
		"-bench", "sgemm", "-designs", "part-adaptive",
		"-protect", "none,parity,secded", "-trials", "3",
		"-rate", "2e-11", "-seed", "42", "-sms", "1",
	}
	return append(base, extra...)
}

// TestCampaignReportByteDeterminism is the acceptance property: the same
// -seed must reproduce a byte-identical report.
func TestCampaignReportByteDeterminism(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.json")
	b := filepath.Join(dir, "b.json")
	var out bytes.Buffer
	if err := run(campaignArgs("-out", a), &out); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(campaignArgs("-out", b), &out); err != nil {
		t.Fatalf("second run: %v", err)
	}
	ab, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ab, bb) {
		t.Error("same seed produced different reports")
	}

	c := filepath.Join(dir, "c.json")
	if err := run(campaignArgs("-out", c, "-seed", "43"), &out); err != nil {
		t.Fatalf("reseeded run: %v", err)
	}
	cb, err := os.ReadFile(c)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ab, cb) {
		t.Error("different seeds produced identical reports (seed unused?)")
	}
}

// TestCampaignReportShape parses the report and checks the schema tag,
// cell coverage, and that every trial was classified exactly once.
func TestCampaignReportShape(t *testing.T) {
	var out bytes.Buffer
	if err := run(campaignArgs(), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Schema != Schema {
		t.Errorf("schema = %q, want %q", rep.Schema, Schema)
	}
	if len(rep.Cells) != 3 {
		t.Fatalf("cells = %d, want 1 design x 3 schemes x 1 workload", len(rep.Cells))
	}
	for _, c := range rep.Cells {
		o := c.Outcomes
		if got := o.Masked + o.Corrected + o.DetectedUnrecoverable + o.SDC; got != rep.Trials {
			t.Errorf("%s/%s: %d classified outcomes, want %d", c.Design, c.Protection, got, rep.Trials)
		}
	}
}

// TestCampaignProtectionOrdering: on the same seeded strikes, SECDED
// must never produce SDC or aborts, and the unprotected cell must never
// report corrections — the classification must reflect the scheme.
func TestCampaignProtectionOrdering(t *testing.T) {
	var out bytes.Buffer
	if err := run(campaignArgs("-trials", "4", "-rate", "1e-10"), &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	byScheme := map[string]Cell{}
	for _, c := range rep.Cells {
		byScheme[c.Protection] = c
	}
	if c := byScheme["secded"]; c.Outcomes.SDC != 0 || c.Outcomes.DetectedUnrecoverable != 0 {
		t.Errorf("secded cell leaked failures: %+v", c.Outcomes)
	}
	if c := byScheme["none"]; c.Outcomes.Corrected != 0 || c.Outcomes.DetectedUnrecoverable != 0 {
		t.Errorf("unprotected cell claims protection outcomes: %+v", c.Outcomes)
	}
	if byScheme["none"].Outcomes.SDC == 0 {
		t.Error("unprotected cell saw no SDC at a rate chosen to corrupt")
	}
	if byScheme["secded"].Corrected == 0 {
		t.Error("secded cell corrected nothing at a rate chosen to strike")
	}
}

// TestCampaignRunawayClassifiedSDC pins the watchdog path with a cell
// observed in the wild: one of these seeded trials corrupts kmeans
// control flow into a runaway loop. Without the golden-derived
// MaxCycles budget this cell burned the simulator's default 200M-cycle
// limit and then failed the whole campaign; with it, the runaway aborts
// in milliseconds and classifies as SDC like any other silent
// corruption.
func TestCampaignRunawayClassifiedSDC(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-bench", "kmeans", "-designs", "part", "-protect", "none",
		"-trials", "5", "-rate", "2e-11", "-seed", "1", "-sms", "2",
	}, &out)
	if err != nil {
		t.Fatalf("runaway trial escaped classification: %v", err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	o := rep.Cells[0].Outcomes
	if got := o.Masked + o.Corrected + o.DetectedUnrecoverable + o.SDC; got != rep.Trials {
		t.Fatalf("%d classified outcomes, want %d", got, rep.Trials)
	}
	if o.SDC == 0 {
		t.Error("runaway cell reported no SDC")
	}
}

// TestCampaignBadFlags: usage errors must name the offending value.
func TestCampaignBadFlags(t *testing.T) {
	var out bytes.Buffer
	for _, args := range [][]string{
		{"-designs", "bogus"},
		{"-protect", "chipkill"},
		{"-trials", "0"},
		{"-rate", "-1"},
		{"-bench", "no-such-bench"},
	} {
		if err := run(args, &out); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestCampaignParallelByteIdentical is the PR's acceptance property at
// the CLI level: -parallel N merges results in canonical submission
// order, so the report bytes match -parallel 1 exactly.
func TestCampaignParallelByteIdentical(t *testing.T) {
	dir := t.TempDir()
	seqPath := filepath.Join(dir, "seq.json")
	parPath := filepath.Join(dir, "par.json")
	var out bytes.Buffer
	if err := run(campaignArgs("-parallel", "1", "-out", seqPath), &out); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run(campaignArgs("-parallel", "4", "-out", parPath), &out); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	seq, err := os.ReadFile(seqPath)
	if err != nil {
		t.Fatal(err)
	}
	par, err := os.ReadFile(parPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq, par) {
		t.Error("-parallel 4 report differs from -parallel 1")
	}

	// The verbose table must be byte-identical too: CellDone is
	// ordered, not completion-ordered.
	var seqTab, parTab bytes.Buffer
	if err := run(campaignArgs("-parallel", "1", "-v", "-out", seqPath), &seqTab); err != nil {
		t.Fatal(err)
	}
	if err := run(campaignArgs("-parallel", "4", "-v", "-out", parPath), &parTab); err != nil {
		t.Fatal(err)
	}
	if seqTab.String() != parTab.String() {
		t.Errorf("verbose tables differ:\n--- seq\n%s--- par\n%s", seqTab.String(), parTab.String())
	}
}

// TestCampaignCacheDir: a warm -cache-dir reproduces the identical
// report, and corrupting the cache degrades to recomputation with the
// same bytes — never a crash or a poisoned report.
func TestCampaignCacheDir(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cache")
	cold := filepath.Join(dir, "cold.json")
	warm := filepath.Join(dir, "warm.json")
	var out bytes.Buffer
	if err := run(campaignArgs("-cache-dir", cacheDir, "-out", cold), &out); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if err := run(campaignArgs("-cache-dir", cacheDir, "-out", warm), &out); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	coldB, err := os.ReadFile(cold)
	if err != nil {
		t.Fatal(err)
	}
	warmB, err := os.ReadFile(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldB, warmB) {
		t.Error("warm-cache report differs from cold report")
	}

	// Trash every entry: bad entry => recompute, not crash.
	ents, err := os.ReadDir(cacheDir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("cache dir unreadable or empty: %v", err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(cacheDir, e.Name()), []byte("{broken"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	healed := filepath.Join(dir, "healed.json")
	if err := run(campaignArgs("-cache-dir", cacheDir, "-out", healed), &out); err != nil {
		t.Fatalf("run over corrupted cache: %v", err)
	}
	healedB, err := os.ReadFile(healed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldB, healedB) {
		t.Error("recomputed-after-corruption report differs")
	}
}
