// Command benchdiff compares two pilotrf-bench/v1 JSON reports (e.g.
// BENCH_PR2.json against a fresh cmd/experiments -bench-json run) and
// prints per-benchmark metric deltas. The simulator is deterministic,
// so every reported metric should reproduce exactly; a relative drift
// beyond -threshold, or a benchmark present in only one report, is a
// regression.
//
// Usage:
//
//	benchdiff [-threshold f] [-v] old.json new.json
//
// ns/op deltas — and per-second rate metrics like Mcycles/s, which are
// wall-clock in disguise — are printed for context but never counted
// against the threshold: wall-clock time is machine-dependent.
//
// Exit status: 0 when every shared metric is within the threshold and
// the benchmark sets match, 1 on drift, set mismatch, or duplicate
// benchmark names in either report, 2 on read or usage errors
// (including a negative -threshold).
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"pilotrf/internal/benchjson"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	threshold := fs.Float64("threshold", 0.001, "max relative metric drift before failing")
	verbose := fs.Bool("v", false, "print unchanged metrics too")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold f] [-v] old.json new.json")
		return 2
	}
	if *threshold < 0 || math.IsNaN(*threshold) {
		fmt.Fprintf(os.Stderr, "benchdiff: -threshold %v must be >= 0\n", *threshold)
		return 2
	}
	old, err := benchjson.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cur, err := benchjson.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}

	violations := 0
	// A duplicated benchmark name would make one result silently shadow
	// the other in the by-name comparison — that is a broken report, so
	// it is a violation in either input.
	oldBy, err := benchjson.Index(old)
	if err != nil {
		fmt.Fprintf(stdout, "%s: %v\n", fs.Arg(0), err)
		violations++
	}
	curBy, err := benchjson.Index(cur)
	if err != nil {
		fmt.Fprintf(stdout, "%s: %v\n", fs.Arg(1), err)
		violations++
	}
	if violations > 0 {
		fmt.Fprintf(stdout, "duplicate benchmark names, %d violations\n", violations)
		return 1
	}

	names := make([]string, 0, len(oldBy))
	for n := range oldBy {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		ob := oldBy[name]
		cb, ok := curBy[name]
		if !ok {
			fmt.Fprintf(stdout, "%s: MISSING from %s\n", name, fs.Arg(1))
			violations++
			continue
		}
		keys := make([]string, 0, len(ob.Metrics))
		for k := range ob.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		printedHeader := false
		header := func() {
			if !printedHeader {
				nsDelta := relDelta(ob.NsPerOp, cb.NsPerOp)
				fmt.Fprintf(stdout, "%s  (ns/op %s, informational)\n", name, fmtDelta(nsDelta))
				printedHeader = true
			}
		}
		if *verbose {
			header()
		}
		for _, k := range keys {
			ov := ob.Metrics[k]
			cv, ok := cb.Metrics[k]
			if !ok {
				header()
				fmt.Fprintf(stdout, "  %-32s %12.4g -> metric MISSING\n", k, ov)
				violations++
				continue
			}
			d := relDelta(ov, cv)
			if informational(k) {
				if *verbose || math.Abs(d) > *threshold {
					header()
					fmt.Fprintf(stdout, "  %-32s %12.4g -> %-12.4g (%s, informational)\n", k, ov, cv, fmtDelta(d))
				}
			} else if math.Abs(d) > *threshold {
				header()
				fmt.Fprintf(stdout, "  %-32s %12.4g -> %-12.4g (%s) DRIFT\n", k, ov, cv, fmtDelta(d))
				violations++
			} else if *verbose {
				fmt.Fprintf(stdout, "  %-32s %12.4g -> %-12.4g ok\n", k, ov, cv)
			}
		}
	}
	for n := range curBy {
		if _, ok := oldBy[n]; !ok {
			fmt.Fprintf(stdout, "%s: NEW in %s\n", n, fs.Arg(1))
		}
	}

	fmt.Fprintf(stdout, "%d benchmarks compared, %d violations (threshold %.3g)\n",
		len(names), violations, *threshold)
	if violations > 0 {
		return 1
	}
	return 0
}

// informational reports whether a metric measures wall-clock rather
// than simulated behavior. Per-second rates (Mcycles/s, MB/s) divide a
// deterministic count by machine-dependent time, so they can never be
// gated by the drift threshold.
func informational(key string) bool {
	return strings.HasSuffix(key, "/s")
}

// relDelta is (new-old)/old, treating an exact match (including 0 -> 0)
// as zero drift and any change away from zero as full drift.
func relDelta(old, new float64) float64 {
	if old == new {
		return 0
	}
	if old == 0 {
		return math.Inf(1)
	}
	return (new - old) / old
}

// fmtDelta renders a relative drift for humans. A 0 -> nonzero change
// has no finite percentage; spell it out instead of printing the +Inf%
// artifact (it still counts as drift — relDelta keeps it infinite so
// every threshold catches it).
func fmtDelta(d float64) string {
	if math.IsInf(d, 0) {
		return "new from zero"
	}
	return fmt.Sprintf("%+.2f%%", d*100)
}
