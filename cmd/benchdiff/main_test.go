package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/benchjson"
)

func writeReport(t *testing.T, dir, name string, benches []benchjson.Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := benchjson.NewReport("test", benches).Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func bench(name string, ns float64, metrics map[string]float64) benchjson.Benchmark {
	return benchjson.Benchmark{Name: name, Procs: 1, Iterations: 1, NsPerOp: ns, Metrics: metrics}
}

func TestIdenticalReportsPass(t *testing.T) {
	dir := t.TempDir()
	benches := []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"saving-pct": 53.7}),
		bench("BenchmarkB", 200, map[string]float64{"cycles": 12345}),
	}
	a := writeReport(t, dir, "a.json", benches)
	b := writeReport(t, dir, "b.json", benches)
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestNsPerOpChangeIsInformationalOnly(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"cycles": 500}),
	})
	b := writeReport(t, dir, "b.json", []benchjson.Benchmark{
		bench("BenchmarkA", 900, map[string]float64{"cycles": 500}),
	})
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 0 {
		t.Fatalf("wall-clock drift failed the diff: exit = %d\n%s", code, out.String())
	}
}

func TestRateMetricsAreInformationalOnly(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"Mcycles/s": 0.15, "cycles": 500}),
	})
	b := writeReport(t, dir, "b.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"Mcycles/s": 0.90, "cycles": 500}),
	})
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 0 {
		t.Fatalf("throughput drift failed the diff: exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "informational") {
		t.Errorf("rate drift not reported:\n%s", out.String())
	}
}

func TestMetricDriftFails(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"cycles": 500}),
	})
	b := writeReport(t, dir, "b.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"cycles": 600}),
	})
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "DRIFT") {
		t.Errorf("output:\n%s", out.String())
	}
	// A generous threshold lets the same drift through.
	out.Reset()
	if code := run([]string{"-threshold", "0.5", a, b}, &out); code != 0 {
		t.Fatalf("threshold 0.5: exit = %d\n%s", code, out.String())
	}
}

func TestMissingBenchmarkFails(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, nil), bench("BenchmarkB", 100, nil),
	})
	b := writeReport(t, dir, "b.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, nil),
	})
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestReadErrorsExitTwo(t *testing.T) {
	dir := t.TempDir()
	badSchema := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(badSchema, []byte(`{"schema":"other/v1"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeReport(t, dir, "good.json", []benchjson.Benchmark{bench("BenchmarkA", 1, nil)})
	var out bytes.Buffer
	if code := run([]string{"/no/such.json", good}, &out); code != 2 {
		t.Errorf("missing file: exit = %d, want 2", code)
	}
	if code := run([]string{badSchema, good}, &out); code != 2 {
		t.Errorf("bad schema: exit = %d, want 2", code)
	}
	if code := run([]string{good}, &out); code != 2 {
		t.Errorf("one arg: exit = %d, want 2", code)
	}
}

// TestDuplicateBenchmarkNamesFail: a duplicated name would let one
// result silently shadow the other in the by-name comparison, so it is
// a violation in either report.
func TestDuplicateBenchmarkNamesFail(t *testing.T) {
	dir := t.TempDir()
	dup := writeReport(t, dir, "dup.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"cycles": 500}),
		bench("BenchmarkA", 200, map[string]float64{"cycles": 600}),
	})
	good := writeReport(t, dir, "good.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"cycles": 500}),
	})
	for _, args := range [][]string{{dup, good}, {good, dup}, {dup, dup}} {
		var out bytes.Buffer
		if code := run(args, &out); code != 1 {
			t.Errorf("%v: exit = %d, want 1\n%s", args, code, out.String())
			continue
		}
		if !strings.Contains(out.String(), "duplicate benchmark") {
			t.Errorf("%v: output lacks duplicate message:\n%s", args, out.String())
		}
	}
}

// TestNegativeThresholdIsUsageError: a negative threshold would flag
// every metric including exact matches — reject it up front.
func TestNegativeThresholdIsUsageError(t *testing.T) {
	dir := t.TempDir()
	good := writeReport(t, dir, "good.json", []benchjson.Benchmark{bench("BenchmarkA", 1, nil)})
	var out bytes.Buffer
	if code := run([]string{"-threshold", "-0.1", good, good}, &out); code != 2 {
		t.Errorf("exit = %d, want 2", code)
	}
}

// TestZeroToNonzeroPrintsNewFromZero: the 0 -> nonzero case has no
// finite percentage; it must read "new from zero", never "+Inf%", and
// still count as drift.
func TestZeroToNonzeroPrintsNewFromZero(t *testing.T) {
	dir := t.TempDir()
	a := writeReport(t, dir, "a.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"faults": 0}),
	})
	b := writeReport(t, dir, "b.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"faults": 3}),
	})
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "new from zero") || !strings.Contains(s, "DRIFT") {
		t.Errorf("output:\n%s", s)
	}
	if strings.Contains(s, "Inf") {
		t.Errorf("infinity artifact still printed:\n%s", s)
	}
	// Same for an informational rate metric under -v: readable, not Inf.
	c := writeReport(t, dir, "c.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"Mcycles/s": 0}),
	})
	d := writeReport(t, dir, "d.json", []benchjson.Benchmark{
		bench("BenchmarkA", 100, map[string]float64{"Mcycles/s": 0.5}),
	})
	out.Reset()
	if code := run([]string{c, d}, &out); code != 0 {
		t.Fatalf("rate-only change gated: exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "new from zero") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestAgainstCommittedTrajectory sanity-checks the committed trajectory
// file parses under the current schema.
func TestAgainstCommittedTrajectory(t *testing.T) {
	rep, err := benchjson.ReadFile("../../BENCH_PR2.json")
	if err != nil {
		t.Fatalf("BENCH_PR2.json: %v", err)
	}
	if len(rep.Benchmarks) == 0 {
		t.Fatal("BENCH_PR2.json has no benchmarks")
	}
}
