// Command rfdiff aligns two flight-recorder logs (captured with
// pilotsim -record-out or the pilotrf facade) and reports where the two
// runs first diverge: the event-stream position and cycle, the
// subsystem that committed the diverging event, a window of context
// from each recording, and the first mismatching state checksum.
//
// Usage:
//
//	rfdiff [-window n] a.ndjson b.ndjson
//
// Exit status: 0 when the recordings are identical, 1 when they
// diverge, 2 on usage or read errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pilotrf/internal/flightrec"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

func run(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("rfdiff", flag.ContinueOnError)
	window := fs.Int("window", 5, "events of context before/after the divergence")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: rfdiff [-window n] a.ndjson b.ndjson")
		return 2
	}
	a, err := flightrec.ReadFile(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	b, err := flightrec.ReadFile(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	report := flightrec.Diff(a, b, *window)
	if err := report.WriteText(stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if report.Diverged {
		return 1
	}
	return 0
}
