package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

// captureRun records one scaled benchmark under the given seed and
// writes the log to a file.
func captureRun(t *testing.T, dir, name string, seed uint64) string {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 1
	cfg.Seed = seed
	rec := sim.NewFlightRecorder(&cfg, name, 32)
	cfg.Record = rec
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := workloads.ByName("sgemm")
	if err != nil {
		t.Fatal(err)
	}
	w = w.Scale(0.1)
	if _, err := g.RunKernels(w.Name, w.Kernels); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+".ndjson")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec.Log().WriteNDJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestIdenticalRunsExitZero(t *testing.T) {
	dir := t.TempDir()
	a := captureRun(t, dir, "a", 1)
	b := captureRun(t, dir, "b", 1)
	var out bytes.Buffer
	if code := run([]string{a, b}, &out); code != 0 {
		t.Fatalf("exit = %d for identical runs\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "IDENTICAL") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestDivergentRunsExitOne(t *testing.T) {
	dir := t.TempDir()
	a := captureRun(t, dir, "a", 1)
	b := captureRun(t, dir, "b", 2)
	var out bytes.Buffer
	if code := run([]string{"-window", "2", a, b}, &out); code != 1 {
		t.Fatalf("exit = %d for divergent runs\n%s", code, out.String())
	}
	for _, want := range []string{"FIRST DIVERGENCE", "seed: 1 vs 2", "context in A"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestUsageAndReadErrorsExitTwo(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"only-one.ndjson"}, &out); code != 2 {
		t.Errorf("one arg: exit = %d, want 2", code)
	}
	if code := run([]string{"/no/such/a.ndjson", "/no/such/b.ndjson"}, &out); code != 2 {
		t.Errorf("missing files: exit = %d, want 2", code)
	}
}
