// Command pilotasm assembles, disassembles, and runs kernels written in
// the textual assembly syntax (see internal/asm).
//
// Usage:
//
//	pilotasm -dis <benchmark>          disassemble a bundled benchmark
//	pilotasm -run <file.s> [flags]     assemble a file and execute it
//	pilotasm -check <file.s>           assemble and validate only
//
// Run flags: -threads (per CTA), -ctas, -design, -profile.
package main

import (
	"flag"
	"fmt"
	"os"

	"pilotrf/internal/asm"
	"pilotrf/internal/cfg"
	"pilotrf/internal/kernel"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

func main() {
	var (
		dis     = flag.String("dis", "", "disassemble a bundled benchmark's kernels")
		runFile = flag.String("run", "", "assemble and run an assembly file")
		check   = flag.String("check", "", "assemble and validate an assembly file")
		dot     = flag.String("dot", "", "assemble a file and emit its control flow graph as Graphviz DOT")
		threads = flag.Int("threads", 256, "threads per CTA for -run")
		ctas    = flag.Int("ctas", 32, "CTAs for -run")
		design  = flag.String("design", "part-adaptive", "mrf-stv | mrf-ntv | part | part-adaptive")
		prof    = flag.String("profile", "hybrid", "static | compiler | pilot | hybrid")
	)
	flag.Parse()

	switch {
	case *dis != "":
		w, err := workloads.ByName(*dis)
		if err != nil {
			fatal(err)
		}
		for _, k := range w.Kernels {
			fmt.Printf("# %s: %d threads/CTA x %d CTAs\n", k.Prog.Name, k.ThreadsPerCTA, k.NumCTAs)
			fmt.Println(asm.Text(k.Prog))
		}
	case *dot != "":
		prog := mustAssemble(*dot)
		fmt.Print(cfg.Build(prog).Dot())
	case *check != "":
		prog := mustAssemble(*check)
		if err := cfg.CheckReconvergence(prog); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: OK (%d instructions, %d registers/thread, reconvergence points verified)\n",
			prog.Name, prog.Len(), prog.NumRegs)
	case *runFile != "":
		prog := mustAssemble(*runFile)
		cfg := sim.DefaultConfig()
		switch *design {
		case "mrf-stv":
			cfg = cfg.WithDesign(regfile.DesignMonolithicSTV)
		case "mrf-ntv":
			cfg = cfg.WithDesign(regfile.DesignMonolithicNTV)
		case "part":
			cfg = cfg.WithDesign(regfile.DesignPartitioned)
		case "part-adaptive":
			cfg = cfg.WithDesign(regfile.DesignPartitionedAdaptive)
		default:
			fatal(fmt.Errorf("unknown design %q", *design))
		}
		switch *prof {
		case "static":
			cfg.Profiling = profile.TechniqueStaticFirstN
		case "compiler":
			cfg.Profiling = profile.TechniqueCompiler
		case "pilot":
			cfg.Profiling = profile.TechniquePilot
		case "hybrid":
			cfg.Profiling = profile.TechniqueHybrid
		default:
			fatal(fmt.Errorf("unknown profile %q", *prof))
		}
		g, err := sim.New(cfg)
		if err != nil {
			fatal(err)
		}
		k := &kernel.Kernel{Prog: prog, ThreadsPerCTA: *threads, NumCTAs: *ctas}
		ks, err := g.RunKernel(k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kernel    %s\n", prog.Name)
		fmt.Printf("cycles    %d\n", ks.Cycles)
		fmt.Printf("instrs    %d warp / %d thread\n", ks.WarpInstrs, ks.ThreadInstrs)
		fmt.Printf("accesses  %d reads / %d writes\n", ks.RegReads, ks.RegWrites)
		fmt.Printf("FRF share %.1f%%  (low-mode share of FRF: %.1f%%)\n",
			ks.FRFShare()*100, ks.FRFLowShareOfFRF()*100)
		fmt.Printf("top-4 registers:")
		for _, kv := range ks.RegHist.TopN(4) {
			fmt.Printf("  R%d(%d)", kv.Key, kv.Count)
		}
		fmt.Println()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func mustAssemble(path string) *kernel.Program {
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	prog, err := asm.Assemble(string(src))
	if err != nil {
		fatal(err)
	}
	return prog
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
