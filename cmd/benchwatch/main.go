// Command benchwatch is the perf-observability instrument for the
// simulator itself: it records multi-sample benchmark runs into an
// append-only pilotrf-benchhistory/v1 store, gates one run against
// another, and renders the full history as a trend report.
//
// Usage:
//
//	benchwatch record -history h.ndjson -label PR8 [-samples n]
//	                  [-commit rev] [-time-unix t]
//	benchwatch import -history h.ndjson -label PR2 [-commit rev]
//	                  [-time-unix t] snapshot.json
//	benchwatch gate   -history h.ndjson [-alpha f] [-min-effect f] [-v]
//	                  oldLabel newLabel
//	benchwatch report -history h.ndjson -out report.md [-svg-dir dir]
//
// record drives the root bench suite (via the same harness as
// cmd/experiments -bench-samples) N times and appends one history
// record holding the per-benchmark ns/op sample vectors plus the
// deterministic metric map. Deterministic metrics must be bit-identical
// across samples; variance in them is reported as a violation (exit 1),
// never averaged away.
//
// gate compares two recorded runs: deterministic metrics must match
// exactly (bit-for-bit), and ns/op sample vectors are tested with a
// deterministic exact Mann-Whitney U test — a regression verdict needs
// p < alpha AND a median change of at least -min-effect. Wall-clock
// verdicts demote to informational when the two runs carry different
// host fingerprints. Given fixed history bytes the gate output is
// byte-identical across invocations: no clocks, no randomness.
//
// report writes a markdown trend table over the whole history plus one
// SVG sparkline per benchmark, annotating statistically significant
// regressions and improvements. Equally deterministic: committing the
// report alongside the history keeps both regenerable.
//
// Exit status, like cmd/benchdiff: 0 clean, 1 violations (gate) or
// recording violations (record), 2 usage or read errors.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"pilotrf/internal/benchjson"
	"pilotrf/internal/benchstat"
	"pilotrf/internal/benchstore"
	"pilotrf/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout))
}

const usage = `usage: benchwatch <record|import|gate|report> [flags]
  record -history h.ndjson -label L [-samples n] [-commit rev] [-time-unix t]
  import -history h.ndjson -label L [-commit rev] [-time-unix t] snapshot.json
  gate   -history h.ndjson [-alpha f] [-min-effect f] [-v] oldLabel newLabel
  report -history h.ndjson -out report.md [-svg-dir dir]`

func run(args []string, stdout io.Writer) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, usage)
		return 2
	}
	switch args[0] {
	case "record":
		return runRecord(args[1:], stdout)
	case "import":
		return runImport(args[1:], stdout)
	case "gate":
		return runGate(args[1:], stdout)
	case "report":
		return runReport(args[1:], stdout)
	default:
		fmt.Fprintf(os.Stderr, "benchwatch: unknown subcommand %q\n%s\n", args[0], usage)
		return 2
	}
}

// ---------------------------------------------------------------- record

func runRecord(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchwatch record", flag.ContinueOnError)
	history := fs.String("history", "", "history file to append to (required)")
	label := fs.String("label", "", "run label (required, unique within the history)")
	samples := fs.Int("samples", 5, "harness passes to run; 5 gives Mann-Whitney a minimum attainable p of 0.008")
	commit := fs.String("commit", "", "git revision recorded with the run")
	timeUnix := fs.Int64("time-unix", 0, "injected timestamp (0 = now)")
	harnessCmd := fs.String("harness-cmd", "", "override the bench command (testing escape hatch)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *history == "" || *label == "" || fs.NArg() != 0 || *samples < 1 {
		fmt.Fprintln(os.Stderr, usage)
		return 2
	}

	harness := experiments.BenchHarness{}
	if *harnessCmd != "" {
		harness.Command = strings.Fields(*harnessCmd)
	}
	runs := make([][]benchjson.Benchmark, 0, *samples)
	for i := 1; i <= *samples; i++ {
		fmt.Fprintf(os.Stderr, "sample %d/%d: %s\n", i, *samples, harness.CommandLine())
		benches, err := harness.RunSample()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		runs = append(runs, benches)
	}

	when := *timeUnix
	if when == 0 {
		when = time.Now().Unix()
	}
	rec, err := benchstore.MergeSamples(*label, *commit, when, benchstore.CurrentHost(), runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		var ve *benchstore.VarianceError
		if errors.As(err, &ve) {
			fmt.Fprintln(os.Stderr, "deterministic-metric variance across samples is a simulator bug, not noise; nothing was recorded")
			return 1
		}
		return 2
	}
	if err := benchstore.AppendRecordFile(*history, rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "recorded %q: %d benchmarks x %d samples -> %s\n",
		*label, len(rec.Benchmarks), *samples, *history)
	return 0
}

// ---------------------------------------------------------------- import

func runImport(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchwatch import", flag.ContinueOnError)
	history := fs.String("history", "", "history file to append to (required)")
	label := fs.String("label", "", "run label (required, unique within the history)")
	commit := fs.String("commit", "", "git revision the snapshot was recorded at")
	timeUnix := fs.Int64("time-unix", 0, "timestamp of the original run (0 = now)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *history == "" || *label == "" || fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, usage)
		return 2
	}
	path := fs.Arg(0)
	rep, err := benchjson.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	when := *timeUnix
	if when == 0 {
		when = time.Now().Unix()
	}
	rec, err := benchstore.ImportReport(*label, *commit, when, benchstore.CurrentHost(),
		"import:"+filepath.Base(path), rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if err := benchstore.AppendRecordFile(*history, rec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "imported %s as %q (1 sample, %d benchmarks) -> %s\n",
		path, *label, len(rec.Benchmarks), *history)
	return 0
}

// ------------------------------------------------------------------ gate

func runGate(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchwatch gate", flag.ContinueOnError)
	history := fs.String("history", "", "history file to gate from (required)")
	alpha := fs.Float64("alpha", 0.05, "Mann-Whitney significance level, in (0, 1)")
	minEffect := fs.Float64("min-effect", 0.10, "minimum relative median ns/op change to flag (0.10 = 10%)")
	verbose := fs.Bool("v", false, "print unchanged benchmarks too")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *history == "" || fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, usage)
		return 2
	}
	if !(*alpha > 0 && *alpha < 1) {
		fmt.Fprintf(os.Stderr, "benchwatch: -alpha %v outside (0, 1)\n", *alpha)
		return 2
	}
	if *minEffect < 0 || math.IsNaN(*minEffect) {
		fmt.Fprintf(os.Stderr, "benchwatch: -min-effect %v must be >= 0\n", *minEffect)
		return 2
	}
	h, err := benchstore.ReadHistoryFile(*history)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	oldRec, ok := h.ByLabel(fs.Arg(0))
	if !ok {
		fmt.Fprintf(os.Stderr, "benchwatch: run label %q not in %s (have: %s)\n",
			fs.Arg(0), *history, strings.Join(h.Labels(), ", "))
		return 2
	}
	newRec, ok := h.ByLabel(fs.Arg(1))
	if !ok {
		fmt.Fprintf(os.Stderr, "benchwatch: run label %q not in %s (have: %s)\n",
			fs.Arg(1), *history, strings.Join(h.Labels(), ", "))
		return 2
	}
	return gate(stdout, oldRec, newRec, *alpha, *minEffect, *verbose)
}

// gate prints the comparison and returns 0/1. Pure function of its
// inputs: the output bytes depend only on the two records and the
// parameters.
func gate(w io.Writer, old, cur benchstore.Record, alpha, minEffect float64, verbose bool) int {
	fmt.Fprintf(w, "gate %s -> %s  (alpha %g, min-effect %g, samples %d vs %d)\n",
		old.Label, cur.Label, alpha, minEffect, old.Samples(), cur.Samples())
	sameHost := old.Host.Equal(cur.Host)
	if !sameHost {
		fmt.Fprintf(w, "  note: host fingerprints differ (%s vs %s); wall-clock verdicts are informational\n",
			old.Host, cur.Host)
	}
	minP := benchstat.MinAttainableP(old.Samples(), cur.Samples())
	if minP > alpha {
		fmt.Fprintf(w, "  note: %dv%d samples cannot reach alpha %g (min attainable p %.3g); wall-clock verdicts are informational\n",
			old.Samples(), cur.Samples(), alpha, minP)
	}

	oldBy := make(map[string]benchstore.BenchmarkSamples, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		oldBy[b.Name] = b
	}
	curBy := make(map[string]benchstore.BenchmarkSamples, len(cur.Benchmarks))
	for _, b := range cur.Benchmarks {
		curBy[b.Name] = b
	}
	names := make([]string, 0, len(oldBy))
	for n := range oldBy {
		names = append(names, n)
	}
	sort.Strings(names)

	violations := 0
	for _, name := range names {
		ob := oldBy[name]
		cb, ok := curBy[name]
		if !ok {
			fmt.Fprintf(w, "%s: MISSING from %s\n", name, cur.Label)
			violations++
			continue
		}
		printedHeader := false
		header := func() {
			if !printedHeader {
				fmt.Fprintf(w, "%s\n", name)
				printedHeader = true
			}
		}
		if verbose {
			header()
		}

		// Deterministic metrics: exact bit match, or it is a violation.
		keys := make([]string, 0, len(ob.Metrics))
		for k := range ob.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov := ob.Metrics[k]
			cv, ok := cb.Metrics[k]
			if !ok {
				header()
				fmt.Fprintf(w, "  metric %-30s %12.6g -> MISSING\n", k, ov)
				violations++
				continue
			}
			if benchstore.Informational(k) {
				if verbose && math.Float64bits(ov) != math.Float64bits(cv) {
					fmt.Fprintf(w, "  metric %-30s %12.6g -> %-12.6g (informational)\n", k, ov, cv)
				}
				continue
			}
			if math.Float64bits(ov) != math.Float64bits(cv) {
				header()
				if ov == 0 && cv != 0 {
					fmt.Fprintf(w, "  metric %-30s %12.6g -> %-12.6g (new from zero) MISMATCH\n", k, ov, cv)
				} else {
					fmt.Fprintf(w, "  metric %-30s %12.6g -> %-12.6g MISMATCH\n", k, ov, cv)
				}
				violations++
			} else if verbose {
				fmt.Fprintf(w, "  metric %-30s %12.6g ok\n", k, ov)
			}
		}
		for k := range cb.Metrics {
			if _, ok := ob.Metrics[k]; !ok && !benchstore.Informational(k) {
				header()
				fmt.Fprintf(w, "  metric %-30s NEW (absent from %s)\n", k, old.Label)
				violations++
			}
		}

		// Wall clock: Mann-Whitney on the sample vectors.
		c := benchstat.Compare(ob.NsPerOp, cb.NsPerOp, alpha, minEffect)
		gateable := sameHost && !c.Underpowered(alpha)
		switch {
		case c.Verdict == benchstat.Slower:
			header()
			if gateable {
				fmt.Fprintf(w, "  ns/op  median %.4g -> %.4g  (%+.1f%%, p=%.3g, n=%dv%d) SLOWER\n",
					c.OldMedian, c.NewMedian, c.Effect*100, c.P, len(ob.NsPerOp), len(cb.NsPerOp))
				violations++
			} else {
				fmt.Fprintf(w, "  ns/op  median %.4g -> %.4g  (%+.1f%%, p=%.3g, n=%dv%d) slower (informational)\n",
					c.OldMedian, c.NewMedian, c.Effect*100, c.P, len(ob.NsPerOp), len(cb.NsPerOp))
			}
		case c.Verdict == benchstat.Faster:
			header()
			fmt.Fprintf(w, "  ns/op  median %.4g -> %.4g  (%+.1f%%, p=%.3g, n=%dv%d) faster\n",
				c.OldMedian, c.NewMedian, c.Effect*100, c.P, len(ob.NsPerOp), len(cb.NsPerOp))
		case verbose:
			fmt.Fprintf(w, "  ns/op  median %.4g -> %.4g  (%+.1f%%, p=%.3g, n=%dv%d) ok\n",
				c.OldMedian, c.NewMedian, c.Effect*100, c.P, len(ob.NsPerOp), len(cb.NsPerOp))
		}
	}
	for _, b := range cur.Benchmarks {
		if _, ok := oldBy[b.Name]; !ok {
			fmt.Fprintf(w, "%s: NEW in %s\n", b.Name, cur.Label)
		}
	}

	fmt.Fprintf(w, "%d benchmarks compared, %d violations (alpha %g, min-effect %g)\n",
		len(names), violations, alpha, minEffect)
	if violations > 0 {
		return 1
	}
	return 0
}

// ---------------------------------------------------------------- report

func runReport(args []string, stdout io.Writer) int {
	fs := flag.NewFlagSet("benchwatch report", flag.ContinueOnError)
	history := fs.String("history", "", "history file to render (required)")
	out := fs.String("out", "", "markdown output path (required)")
	svgDir := fs.String("svg-dir", "", "sparkline directory (default: <out dir>/sparklines)")
	alpha := fs.Float64("alpha", 0.05, "significance level for regression annotations")
	minEffect := fs.Float64("min-effect", 0.10, "minimum relative median change to annotate")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *history == "" || *out == "" || fs.NArg() != 0 {
		fmt.Fprintln(os.Stderr, usage)
		return 2
	}
	if !(*alpha > 0 && *alpha < 1) || *minEffect < 0 || math.IsNaN(*minEffect) {
		fmt.Fprintf(os.Stderr, "benchwatch: bad -alpha %v / -min-effect %v\n", *alpha, *minEffect)
		return 2
	}
	h, err := benchstore.ReadHistoryFile(*history)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	if len(h.Records) == 0 {
		fmt.Fprintf(os.Stderr, "benchwatch: %s has no records\n", *history)
		return 2
	}
	dir := *svgDir
	if dir == "" {
		dir = filepath.Join(filepath.Dir(*out), "sparklines")
	}
	if err := writeReport(*out, dir, filepath.Base(*history), h, *alpha, *minEffect); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s and %d sparklines to %s\n", *out, len(benchNames(h)), dir)
	return 0
}

// benchNames returns the sorted union of benchmark names across the
// history.
func benchNames(h benchstore.History) []string {
	seen := map[string]bool{}
	for _, r := range h.Records {
		for _, b := range r.Benchmarks {
			seen[b.Name] = true
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// fmtNS humanizes a ns/op value deterministically.
func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.1fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// cellInfo is one rendered table cell plus whether it was flagged as a
// regression (drives the sparkline marker color).
type cellInfo struct {
	text    string
	regress bool
}

// trendCells renders one benchmark's row across the history,
// annotating statistically significant changes vs the previous record
// the benchmark appears in.
func trendCells(h benchstore.History, name string, alpha, minEffect float64) []cellInfo {
	cells := make([]cellInfo, len(h.Records))
	var prev *benchstore.BenchmarkSamples
	var prevHost benchstore.Host
	for i, rec := range h.Records {
		var cur *benchstore.BenchmarkSamples
		for j := range rec.Benchmarks {
			if rec.Benchmarks[j].Name == name {
				cur = &rec.Benchmarks[j]
				break
			}
		}
		if cur == nil {
			cells[i] = cellInfo{text: "—"}
			continue
		}
		s := benchstat.Summarize(cur.NsPerOp)
		text := fmtNS(s.Median)
		if prev != nil {
			c := benchstat.Compare(prev.NsPerOp, cur.NsPerOp, alpha, minEffect)
			gateable := prevHost.Equal(rec.Host) && !c.Underpowered(alpha)
			switch {
			case c.Verdict == benchstat.Slower && gateable:
				text += fmt.Sprintf(" **+%.0f%% ⚠**", c.Effect*100)
				cells[i].regress = true
			case c.Verdict == benchstat.Faster && gateable:
				text += fmt.Sprintf(" −%.0f%% ✓", -c.Effect*100)
			case math.Abs(c.Effect) >= minEffect:
				// Visible shift that the statistics cannot vouch for
				// (single-sample backfill, host change): note it
				// without a verdict.
				text += fmt.Sprintf(" (%+.0f%%)", c.Effect*100)
			}
		}
		cells[i] = cellInfo{text: text, regress: cells[i].regress}
		prev, prevHost = cur, rec.Host
	}
	return cells
}

// sparklineSVG renders a median-ns/op trend as a small SVG: one point
// per record the benchmark appears in, a connecting polyline, and a
// filled marker per point (regressions in red). All coordinates are
// formatted with fixed precision so the bytes are reproducible.
func sparklineSVG(medians []float64, regress []bool) string {
	const (
		width, height = 160.0, 36.0
		pad           = 4.0
	)
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`,
		width, height, width, height)
	sb.WriteString("\n")
	lo, hi := medians[0], medians[0]
	for _, v := range medians {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	x := func(i int) float64 {
		if len(medians) == 1 {
			return width / 2
		}
		return pad + (width-2*pad)*float64(i)/float64(len(medians)-1)
	}
	y := func(v float64) float64 {
		if hi == lo {
			return height / 2
		}
		return height - pad - (height-2*pad)*(v-lo)/(hi-lo)
	}
	if len(medians) > 1 {
		var pts []string
		for i, v := range medians {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(i), y(v)))
		}
		fmt.Fprintf(&sb, `<polyline fill="none" stroke="#8a8f98" stroke-width="1.5" points="%s"/>`,
			strings.Join(pts, " "))
		sb.WriteString("\n")
	}
	for i, v := range medians {
		color := "#4878d0"
		if regress[i] {
			color = "#d65f5f"
		}
		fmt.Fprintf(&sb, `<circle cx="%.1f" cy="%.1f" r="2.5" fill="%s"/>`, x(i), y(v), color)
		sb.WriteString("\n")
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// metricChanges lists deterministic-metric differences between
// consecutive records, in deterministic order.
func metricChanges(h benchstore.History) []string {
	var out []string
	for i := 1; i < len(h.Records); i++ {
		prev, cur := h.Records[i-1], h.Records[i]
		prevBy := map[string]benchstore.BenchmarkSamples{}
		for _, b := range prev.Benchmarks {
			prevBy[b.Name] = b
		}
		var lines []string
		for _, cb := range cur.Benchmarks {
			pb, ok := prevBy[cb.Name]
			if !ok {
				lines = append(lines, fmt.Sprintf("`%s`: new benchmark", cb.Name))
				continue
			}
			keys := make([]string, 0, len(pb.Metrics))
			for k := range pb.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				if benchstore.Informational(k) {
					continue
				}
				pv := pb.Metrics[k]
				cv, ok := cb.Metrics[k]
				if !ok {
					lines = append(lines, fmt.Sprintf("`%s` %s: %.6g -> metric removed", cb.Name, k, pv))
					continue
				}
				if math.Float64bits(pv) != math.Float64bits(cv) {
					if pv == 0 && cv != 0 {
						lines = append(lines, fmt.Sprintf("`%s` %s: %.6g -> %.6g (new from zero)", cb.Name, k, pv, cv))
					} else {
						lines = append(lines, fmt.Sprintf("`%s` %s: %.6g -> %.6g", cb.Name, k, pv, cv))
					}
				}
			}
		}
		for _, pb := range prev.Benchmarks {
			found := false
			for _, cb := range cur.Benchmarks {
				if cb.Name == pb.Name {
					found = true
					break
				}
			}
			if !found {
				lines = append(lines, fmt.Sprintf("`%s`: benchmark removed", pb.Name))
			}
		}
		if len(lines) > 0 {
			out = append(out, fmt.Sprintf("**%s → %s**: %d change(s)", prev.Label, cur.Label, len(lines)))
			for _, l := range lines {
				out = append(out, "  - "+l)
			}
		}
	}
	return out
}

// writeReport renders the markdown trend report and the sparkline SVGs.
func writeReport(outPath, svgDir, historyName string, h benchstore.History, alpha, minEffect float64) error {
	if err := os.MkdirAll(svgDir, 0o755); err != nil {
		return err
	}
	relSVG, err := filepath.Rel(filepath.Dir(outPath), svgDir)
	if err != nil {
		relSVG = svgDir
	}

	var sb strings.Builder
	sb.WriteString("# pilotrf perf history\n\n")
	fmt.Fprintf(&sb, "Rendered by `benchwatch report` from `%s`; regenerate with\n\n", historyName)
	fmt.Fprintf(&sb, "```sh\ngo run ./cmd/benchwatch report -history %s -out %s -svg-dir %s\n```\n\n",
		historyName, filepath.Base(outPath), relSVG)
	sb.WriteString("The output is a pure function of the history bytes — same input, same bytes out.\n\n")

	sb.WriteString("## Runs\n\n")
	sb.WriteString("| run | date (UTC) | commit | samples | host | source |\n")
	sb.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range h.Records {
		date := time.Unix(r.TimeUnix, 0).UTC().Format("2006-01-02")
		commit := r.Commit
		if commit == "" {
			commit = "—"
		}
		source := r.Source
		if source == "" {
			source = "recorded"
		}
		fmt.Fprintf(&sb, "| %s | %s | `%s` | %d | %s | %s |\n",
			r.Label, date, commit, r.Samples(), r.Host, source)
	}
	sb.WriteString("\n")

	sb.WriteString("## Wall-clock trend (median ns/op per run)\n\n")
	fmt.Fprintf(&sb, "Annotations: `**+x%% ⚠**` = statistically significant regression vs the previous run "+
		"(Mann-Whitney p < %g and ≥ %.0f%% median change), `−x%% ✓` = significant improvement, "+
		"`(±x%%)` = visible shift the sample counts cannot vouch for.\n\n", alpha, minEffect*100)
	sb.WriteString("| benchmark |")
	for _, r := range h.Records {
		fmt.Fprintf(&sb, " %s |", r.Label)
	}
	sb.WriteString(" trend |\n|---|")
	for range h.Records {
		sb.WriteString("---|")
	}
	sb.WriteString("---|\n")

	for _, name := range benchNames(h) {
		cells := trendCells(h, name, alpha, minEffect)
		fmt.Fprintf(&sb, "| `%s` |", name)
		for _, c := range cells {
			fmt.Fprintf(&sb, " %s |", c.text)
		}

		var medians []float64
		var regress []bool
		for i, rec := range h.Records {
			for _, b := range rec.Benchmarks {
				if b.Name == name {
					medians = append(medians, benchstat.Summarize(b.NsPerOp).Median)
					regress = append(regress, cells[i].regress)
					break
				}
			}
		}
		svgName := name + ".svg"
		if err := os.WriteFile(filepath.Join(svgDir, svgName),
			[]byte(sparklineSVG(medians, regress)), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&sb, " ![%s](%s) |\n", name, filepath.ToSlash(filepath.Join(relSVG, svgName)))
	}
	sb.WriteString("\n")

	sb.WriteString("## Deterministic metrics\n\n")
	changes := metricChanges(h)
	if len(changes) == 0 {
		sb.WriteString("Bit-identical across every consecutive pair of runs (rate metrics with a `/s` unit " +
			"are wall-clock in disguise and exempt).\n")
	} else {
		sb.WriteString("Changes between consecutive runs (rate metrics with a `/s` unit are exempt):\n\n")
		for _, l := range changes {
			sb.WriteString(l + "\n")
		}
	}

	return os.WriteFile(outPath, []byte(sb.String()), 0o644)
}
