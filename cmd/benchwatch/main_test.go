package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/benchstore"
)

func host() benchstore.Host {
	return benchstore.Host{GOOS: "linux", GOARCH: "amd64", NumCPU: 1, GoVersion: "go1.24.0"}
}

func record(label string, t int64, benches ...benchstore.BenchmarkSamples) benchstore.Record {
	return benchstore.Record{Label: label, Commit: "c0ffee", TimeUnix: t, Host: host(), Benchmarks: benches}
}

func writeHistory(t *testing.T, recs ...benchstore.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "hist.ndjson")
	if err := benchstore.WriteHistoryFile(path, benchstore.History{Records: recs}); err != nil {
		t.Fatal(err)
	}
	return path
}

var (
	baseSamples = []float64{100, 101, 99, 100.5, 99.5}
	slowSamples = []float64{200, 202, 198, 201, 199}
)

// TestGateFlags2xSlowdownAt5Samples is the acceptance case: a
// synthetic 2x ns/op slowdown at 5 samples must gate (exit 1).
func TestGateFlags2xSlowdownAt5Samples(t *testing.T) {
	hist := writeHistory(t,
		record("old", 1, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: baseSamples,
			Metrics: map[string]float64{"cycles": 500}}),
		record("new", 2, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: slowSamples,
			Metrics: map[string]float64{"cycles": 500}}),
	)
	var out bytes.Buffer
	code := run([]string{"gate", "-history", hist, "old", "new"}, &out)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "SLOWER") {
		t.Errorf("output lacks SLOWER verdict:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "1 violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestGateIdenticalSampleSetsPass: re-recording the exact same sample
// set must not be flagged.
func TestGateIdenticalSampleSetsPass(t *testing.T) {
	mk := func(label string, ts int64) benchstore.Record {
		return record(label, ts, benchstore.BenchmarkSamples{Name: "BenchmarkA",
			NsPerOp: baseSamples, Metrics: map[string]float64{"cycles": 500}})
	}
	hist := writeHistory(t, mk("r1", 1), mk("r2", 2))
	var out bytes.Buffer
	if code := run([]string{"gate", "-history", hist, "r1", "r2"}, &out); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestGateDeterministic: gate output is byte-identical across
// invocations given fixed history bytes.
func TestGateDeterministic(t *testing.T) {
	hist := writeHistory(t,
		record("old", 1, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: baseSamples,
			Metrics: map[string]float64{"cycles": 500, "saving-pct": 53.7}}),
		record("new", 2, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: slowSamples,
			Metrics: map[string]float64{"cycles": 501, "saving-pct": 53.7}}),
	)
	var a, b bytes.Buffer
	codeA := run([]string{"gate", "-v", "-history", hist, "old", "new"}, &a)
	codeB := run([]string{"gate", "-v", "-history", hist, "old", "new"}, &b)
	if codeA != codeB {
		t.Fatalf("exit codes differ: %d vs %d", codeA, codeB)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("gate output not byte-identical:\n--- a\n%s\n--- b\n%s", a.String(), b.String())
	}
}

// TestGateMetricMismatch: deterministic metrics gate on exact bit
// equality, with the 0 -> nonzero case spelled out instead of an
// infinity artifact.
func TestGateMetricMismatch(t *testing.T) {
	hist := writeHistory(t,
		record("old", 1, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{100},
			Metrics: map[string]float64{"cycles": 500, "faults": 0}}),
		record("new", 2, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{100},
			Metrics: map[string]float64{"cycles": 500.0001, "faults": 3}}),
	)
	var out bytes.Buffer
	if code := run([]string{"gate", "-history", hist, "old", "new"}, &out); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "MISMATCH") || !strings.Contains(s, "2 violations") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "new from zero") {
		t.Errorf("0 -> nonzero not spelled out:\n%s", s)
	}
	if strings.Contains(s, "Inf") {
		t.Errorf("infinity artifact in output:\n%s", s)
	}
}

// TestGateHostMismatchInformational: differing host fingerprints demote
// wall-clock verdicts to informational, but metric gating still bites.
func TestGateHostMismatchInformational(t *testing.T) {
	other := record("new", 2, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: slowSamples,
		Metrics: map[string]float64{"cycles": 500}})
	other.Host.NumCPU = 64
	hist := writeHistory(t,
		record("old", 1, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: baseSamples,
			Metrics: map[string]float64{"cycles": 500}}),
		other,
	)
	var out bytes.Buffer
	if code := run([]string{"gate", "-history", hist, "old", "new"}, &out); code != 0 {
		t.Fatalf("exit = %d, want 0 (cross-host wall-clock must not gate)\n%s", code, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "host fingerprints differ") || !strings.Contains(s, "informational") {
		t.Errorf("output:\n%s", s)
	}
}

// TestGateUnderpoweredInformational: 1v1 samples cannot reach
// significance; gate must say so and not flag wall clock.
func TestGateUnderpoweredInformational(t *testing.T) {
	hist := writeHistory(t,
		record("old", 1, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{100}}),
		record("new", 2, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{900}}),
	)
	var out bytes.Buffer
	if code := run([]string{"gate", "-history", hist, "old", "new"}, &out); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "cannot reach alpha") {
		t.Errorf("underpowered note missing:\n%s", out.String())
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	hist := writeHistory(t,
		record("old", 1,
			benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{100}},
			benchstore.BenchmarkSamples{Name: "BenchmarkB", NsPerOp: []float64{100}}),
		record("new", 2, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{100}}),
	)
	var out bytes.Buffer
	if code := run([]string{"gate", "-history", hist, "old", "new"}, &out); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "MISSING") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestUsageErrorsExitTwo(t *testing.T) {
	var out bytes.Buffer
	for name, args := range map[string][]string{
		"no args":         {},
		"unknown sub":     {"frobnicate"},
		"gate no history": {"gate", "a", "b"},
		"gate one label":  {"gate", "-history", "x.ndjson", "a"},
		"gate bad alpha":  {"gate", "-history", "x.ndjson", "-alpha", "1.5", "a", "b"},
		"gate bad effect": {"gate", "-history", "x.ndjson", "-min-effect", "-1", "a", "b"},
		"record no label": {"record", "-history", "x.ndjson"},
		"import no file":  {"import", "-history", "x.ndjson", "-label", "L"},
		"report no out":   {"report", "-history", "x.ndjson"},
	} {
		if code := run(args, &out); code != 2 {
			t.Errorf("%s: exit = %d, want 2", name, code)
		}
	}
	// Unknown label and unreadable history are read errors, not crashes.
	hist := writeHistory(t, record("old", 1,
		benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: []float64{1}}))
	if code := run([]string{"gate", "-history", hist, "old", "nope"}, &out); code != 2 {
		t.Errorf("unknown label: exit = %d, want 2", code)
	}
	if code := run([]string{"gate", "-history", "/no/such.ndjson", "a", "b"}, &out); code != 2 {
		t.Errorf("missing history: exit = %d, want 2", code)
	}
}

// fakeHarness writes a script that emits go-test bench output; each
// invocation bumps a counter so ns/op varies while metrics stay fixed
// (or vary, when varyMetric is set — the recording violation case).
func fakeHarness(t *testing.T, dir string, varyMetric bool) string {
	t.Helper()
	metric := `500`
	if varyMetric {
		metric = `$((500 + n))`
	}
	script := `#!/bin/sh
count="` + dir + `/count"
n=$(cat "$count" 2>/dev/null || echo 0)
n=$((n + 1))
echo "$n" > "$count"
echo "goos: linux"
echo "BenchmarkA 	       1	$((1000 + n * 10)) ns/op	 ` + metric + ` cycles	 0.15 Mcycles/s"
echo "PASS"
`
	path := filepath.Join(dir, "fake.sh")
	if err := os.WriteFile(path, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRecordAppendsMultiSampleRecord(t *testing.T) {
	dir := t.TempDir()
	script := fakeHarness(t, dir, false)
	hist := filepath.Join(dir, "hist.ndjson")
	var out bytes.Buffer
	code := run([]string{"record", "-history", hist, "-label", "PR8", "-samples", "3",
		"-commit", "deadbeef", "-time-unix", "42", "-harness-cmd", "sh " + script}, &out)
	if code != 0 {
		t.Fatalf("exit = %d\n%s", code, out.String())
	}
	h, err := benchstore.ReadHistoryFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := h.ByLabel("PR8")
	if !ok || rec.Samples() != 3 || rec.Commit != "deadbeef" || rec.TimeUnix != 42 {
		t.Fatalf("record = %+v", rec)
	}
	b := rec.Benchmarks[0]
	if b.Name != "BenchmarkA" || b.NsPerOp[0] != 1010 || b.NsPerOp[2] != 1030 {
		t.Errorf("samples = %+v", b)
	}
	if b.Metrics["cycles"] != 500 {
		t.Errorf("metrics = %v", b.Metrics)
	}
}

// TestRecordMetricVarianceIsViolation: a deterministic metric that
// varies across samples aborts the recording with exit 1.
func TestRecordMetricVarianceIsViolation(t *testing.T) {
	dir := t.TempDir()
	script := fakeHarness(t, dir, true)
	hist := filepath.Join(dir, "hist.ndjson")
	var out bytes.Buffer
	code := run([]string{"record", "-history", hist, "-label", "PR8", "-samples", "2",
		"-harness-cmd", "sh " + script}, &out)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if _, err := os.Stat(hist); !os.IsNotExist(err) {
		t.Error("violating run was recorded anyway")
	}
}

// TestImportBackfillsCommittedSnapshots: the committed BENCH_PR2/PR3
// snapshots import as single-sample records and gate clean against
// each other (their deterministic metrics are bit-identical; the 1v1
// wall-clock comparison is underpowered by construction).
func TestImportBackfillsCommittedSnapshots(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.ndjson")
	var out bytes.Buffer
	for _, tc := range []struct{ label, file, ts string }{
		{"PR2", "../../BENCH_PR2.json", "1785891015"},
		{"PR3", "../../BENCH_PR3.json", "1785893339"},
	} {
		code := run([]string{"import", "-history", hist, "-label", tc.label,
			"-time-unix", tc.ts, tc.file}, &out)
		if code != 0 {
			t.Fatalf("import %s: exit = %d\n%s", tc.label, code, out.String())
		}
	}
	// Duplicate label refuses.
	if code := run([]string{"import", "-history", hist, "-label", "PR2",
		"-time-unix", "1", "../../BENCH_PR2.json"}, &out); code != 2 {
		t.Errorf("duplicate import: exit = %d, want 2", code)
	}
	out.Reset()
	if code := run([]string{"gate", "-history", hist, "PR2", "PR3"}, &out); code != 0 {
		t.Fatalf("gate PR2->PR3: exit = %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Errorf("output:\n%s", out.String())
	}
}

// TestReportDeterministicAndAnnotated: report output (markdown and
// every SVG) is byte-identical across invocations, and the synthetic
// regression is annotated.
func TestReportDeterministicAndAnnotated(t *testing.T) {
	hist := writeHistory(t,
		record("old", 100, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: baseSamples,
			Metrics: map[string]float64{"cycles": 500}}),
		record("new", 200, benchstore.BenchmarkSamples{Name: "BenchmarkA", NsPerOp: slowSamples,
			Metrics: map[string]float64{"cycles": 501}}),
	)
	render := func(dir string) (string, string) {
		t.Helper()
		out := filepath.Join(dir, "REPORT.md")
		svg := filepath.Join(dir, "sparklines")
		var buf bytes.Buffer
		if code := run([]string{"report", "-history", hist, "-out", out, "-svg-dir", svg}, &buf); code != 0 {
			t.Fatalf("report: exit = %d\n%s", code, buf.String())
		}
		md, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		spark, err := os.ReadFile(filepath.Join(svg, "BenchmarkA.svg"))
		if err != nil {
			t.Fatal(err)
		}
		return string(md), string(spark)
	}
	md1, svg1 := render(t.TempDir())
	md2, svg2 := render(t.TempDir())
	if md1 != md2 {
		t.Error("report markdown not byte-identical across invocations")
	}
	if svg1 != svg2 {
		t.Error("sparkline SVG not byte-identical across invocations")
	}
	if !strings.Contains(md1, "⚠") || !strings.Contains(md1, "+100%") {
		t.Errorf("regression not annotated:\n%s", md1)
	}
	if !strings.Contains(md1, "`cycles`") && !strings.Contains(md1, "cycles: 500 -> 501") {
		t.Errorf("metric change not listed:\n%s", md1)
	}
	if !strings.Contains(svg1, "<svg") || !strings.Contains(svg1, "#d65f5f") {
		t.Errorf("sparkline missing regression marker:\n%s", svg1)
	}
	if !strings.Contains(md1, "sparklines/BenchmarkA.svg") {
		t.Errorf("sparkline not linked:\n%s", md1)
	}
}
