package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"pilotrf/internal/campaign"
	"pilotrf/internal/fleet"
	"pilotrf/internal/jobs"
)

// TestHTTPServerTimeouts pins the slowloris hardening: the serving
// http.Server must bound header and request reads and recycle idle
// connections, and must NOT set a write timeout (progress streams are
// long-lived).
func TestHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout not set: slow-header clients pin connections forever")
	}
	if srv.ReadTimeout <= 0 {
		t.Error("ReadTimeout not set: slow-body clients pin connections forever")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("IdleTimeout not set: idle keep-alives accumulate")
	}
	if srv.WriteTimeout != 0 {
		t.Error("WriteTimeout set: it would cut off long-lived NDJSON progress streams")
	}
	if srv.ReadHeaderTimeout > srv.ReadTimeout {
		t.Errorf("ReadHeaderTimeout %v exceeds ReadTimeout %v", srv.ReadHeaderTimeout, srv.ReadTimeout)
	}
}

// TestRetryAfterDeterministicJitter pins the per-client 429 backoff
// hints: stable for a given key, spread across keys, always in [1, 4].
func TestRetryAfterDeterministicJitter(t *testing.T) {
	pinned := map[string]int{
		"alice":    2,
		"bob":      1,
		"10.0.0.1": 3,
		"10.0.0.2": 2,
		"":         1,
	}
	for client, want := range pinned {
		if got := retryAfterSeconds(client); got != want {
			t.Errorf("retryAfterSeconds(%q) = %d, want pinned %d", client, got, want)
		}
	}
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		v := retryAfterSeconds("client-" + strconv.Itoa(i))
		if v < 1 || v > 4 {
			t.Fatalf("retryAfterSeconds out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Errorf("jitter barely spreads: only values %v over 64 clients", seen)
	}
}

// TestRetryAfterHeaderUsesClientJitter: the live 429 path carries the
// client's deterministic jitter value, not a constant.
func TestRetryAfterHeaderUsesClientJitter(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 1, queueUnits: 1})
	// One unit of capacity; a 2-unit spec (golden + 1 trial) over-fills
	// the queue and must be rejected with this client's pinned hint.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs",
		strings.NewReader(`{"jobs":[`+testSpecJSON+`]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Client-ID", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	want := strconv.Itoa(retryAfterSeconds("alice"))
	if got := resp.Header.Get("Retry-After"); got != want {
		t.Errorf("Retry-After = %q, want %q for client alice", got, want)
	}
}

// TestCoordinatorRoleEndToEnd: a coordinator-role server with one fleet
// worker produces reports byte-identical to the standalone path, and
// its /healthz carries the fleet topology while standalone's does not.
func TestCoordinatorRoleEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	s, ts := newTestServer(t, serverConfig{workers: 2, role: "coordinator", cacheDir: t.TempDir()})
	if s.fleet == nil {
		t.Fatal("coordinator role did not create a fleet coordinator")
	}

	wctx, cancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() {
		workerDone <- fleet.RunWorker(wctx, fleet.WorkerConfig{Coordinator: ts.URL, Parallel: 2})
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-workerDone:
		case <-time.After(10 * time.Second):
			t.Error("fleet worker did not stop")
		}
	})

	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	final := streamJob(t, ts, sub.Jobs[0].ID)
	if final.State != "done" {
		t.Fatalf("fleet job failed: %s", final.Error)
	}

	var spec campaign.Spec
	if err := json.Unmarshal([]byte(testSpecJSON), &spec); err != nil {
		t.Fatal(err)
	}
	pool, err := jobs.New(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	want, err := campaign.Run(context.Background(), spec, campaign.Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, _ := json.Marshal(final.Report)
	wantJSON, _ := json.Marshal(want)
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("fleet-run report differs from standalone:\n%s\n---\n%s", gotJSON, wantJSON)
	}

	// The job's span tree must be servable and include fleet spans.
	traceResp, err := http.Get(ts.URL + "/v1/jobs/" + sub.Jobs[0].ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	if traceResp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", traceResp.StatusCode)
	}
	traceBody, err := io.ReadAll(traceResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traceBody), "fleet.cell") {
		t.Error("job trace has no fleet.cell spans")
	}

	// Coordinator health carries the fleet section.
	var health map[string]json.RawMessage
	getJSON(t, ts.URL+"/healthz", &health)
	if _, ok := health["fleet"]; !ok {
		t.Error("coordinator /healthz missing fleet section")
	}

	// Standalone health must NOT grow a fleet section (byte-stability
	// for existing probes).
	_, plain := newTestServer(t, serverConfig{workers: 1})
	var plainHealth map[string]json.RawMessage
	getJSON(t, plain.URL+"/healthz", &plainHealth)
	if _, ok := plainHealth["fleet"]; ok {
		t.Error("standalone /healthz grew a fleet section")
	}
}

// TestUnknownRoleRejected: newServer fails closed on a bad role.
func TestUnknownRoleRejected(t *testing.T) {
	if _, err := newServer(serverConfig{workers: 1, role: "observer"}); err == nil {
		t.Fatal("unknown role accepted")
	}
}

func getJSON(t *testing.T, url string, out interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
