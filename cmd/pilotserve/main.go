// Command pilotserve is the batch simulation job server: it accepts
// fault-campaign specs over HTTP, runs them on one shared work-stealing
// pool (internal/jobs) with a content-addressed result cache, and
// streams per-job progress. Equal specs produce byte-identical reports,
// exactly like cmd/faultcampaign.
//
// Usage:
//
//	pilotserve [-addr :8091] [-parallel n] [-cache-dir dir]
//	           [-queue-units n] [-per-client n]
//	           [-role standalone|coordinator|worker] [-coordinator url]
//
// Roles (-role, default standalone):
//
//	standalone  — today's behavior: campaigns run on the local pool.
//	coordinator — additionally serves the fleet wire API
//	              (/v1/fleet/register, /lease, /heartbeat, /result,
//	              /cache/{key}) and shards each admitted campaign's
//	              cells across registered workers under expiring
//	              leases; a dead worker's cells re-queue, results merge
//	              in canonical order, and the report stays
//	              byte-identical to a standalone run. Finished cells
//	              persist to -cache-dir, so a restarted coordinator
//	              resumes a campaign from its completed cells.
//	worker      — connects to -coordinator, registers with a host
//	              fingerprint, and executes leased cells on the local
//	              pool through the coordinator's shared result cache,
//	              heartbeating each lease. Serves only /healthz and
//	              /metrics locally.
//
// API:
//
//	POST /v1/jobs        — submit a batch: {"jobs":[spec, ...]} where
//	                       each spec matches internal/campaign.Spec
//	                       (benchmarks, designs, protect, trials, rate,
//	                       seed, scale, sms; zero values select the
//	                       campaign defaults). Returns 202 and
//	                       {"jobs":[{"id":"job-1","units":n}, ...]}.
//	                       Admission is atomic per batch; a full queue
//	                       or a client over its in-flight limit gets
//	                       429 with Retry-After.
//	GET  /v1/jobs/{id}   — stream NDJSON progress lines
//	                       {"id","state","done","total"} until the
//	                       terminal line carries the report ("done") or
//	                       the error ("failed").
//	GET  /healthz        — JSON {"status","uptime_seconds","go_version",
//	                       "version"}: 200 with status "ok" while
//	                       serving, 503 with status "draining" while
//	                       draining.
//	GET  /v1/jobs/{id}/trace
//	                     — the finished job's span tree: admission,
//	                       queue wait, campaign phases, golden runs,
//	                       cells, trials, and pool tasks, as
//	                       pilotrf-spans/v1 NDJSON (?format=perfetto for
//	                       Chrome/Perfetto trace_event JSON). 409 while
//	                       the job is still queued or running.
//	GET  /metrics        — serving + pool + cache metrics in Prometheus
//	                       text exposition (?format=json for a flat JSON
//	                       map, ?format=text for the legacy dump);
//	                       /debug/vars and /debug/pprof ride along via
//	                       the telemetry mux.
//
// Every request carries an X-Request-ID (the caller's, or a generated
// req-N), echoed on the response, stamped on each NDJSON progress line
// of the jobs it admitted, and attached to every structured log record.
// Requests also join W3C trace context: an inbound traceparent header's
// trace id is adopted (the caller's span id is kept as the job root
// span's w3c_parent attribute), otherwise one is minted; either way the
// response carries a traceparent naming a fresh server span, and the
// trace id is stamped on status lines and log records alongside the
// request id. Logs are JSON (log/slog) on stderr; per-endpoint latency
// and queue-wait histograms land in /metrics.
//
// SIGINT/SIGTERM drains gracefully: admission stops (503), running jobs
// finish, then the process exits 0. A second signal forces exit 3.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"pilotrf/internal/fleet"
	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pilotserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		parallel   = fs.Int("parallel", jobs.DefaultWorkers(), "simulation pool worker count")
		cacheDir   = fs.String("cache-dir", "", "persist golden runs and cells here across jobs and restarts")
		queueUnits = fs.Int("queue-units", jobs.DefaultQueueDepth, "max admitted simulation jobs (golden runs + trials) in flight")
		perClient  = fs.Int("per-client", 8, "max in-flight batch jobs per client")
		role       = fs.String("role", "standalone", "standalone | coordinator | worker")
		coordURL   = fs.String("coordinator", "", "coordinator base URL (required for -role worker)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel <= 0 || *queueUnits <= 0 || *perClient <= 0 {
		fmt.Fprintln(os.Stderr, "parallel, queue-units, and per-client must be positive")
		return 2
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	if *role == "worker" {
		return runWorker(*addr, *coordURL, *parallel, logger)
	}
	s, err := newServer(serverConfig{
		workers:    *parallel,
		queueUnits: *queueUnits,
		perClient:  *perClient,
		cacheDir:   *cacheDir,
		reg:        telemetry.NewRegistry(),
		log:        logger,
		role:       *role,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := newHTTPServer(s)
	logger.Info("listening", "addr", ln.Addr().String(), "role", *role,
		"workers", *parallel, "queue_units", *queueUnits, "version", buildVersion())

	// First signal: drain — stop admitting, finish running jobs, exit 0.
	// Second signal: force exit 3 without waiting.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-sigc:
	}
	logger.Info("draining", "detail", "waiting for running jobs (signal again to force)")
	s.beginDrain()
	drained := make(chan struct{})
	go func() {
		s.waitIdle()
		close(drained)
	}()
	select {
	case <-drained:
		_ = srv.Close()
		logger.Info("drained cleanly")
		return 0
	case <-sigc:
		logger.Error("forced shutdown: jobs abandoned")
		return 3
	}
}

// runWorker is the -role worker main loop: a fleet worker pulling
// leased cells from the coordinator, plus a local /healthz + /metrics
// endpoint for probes. SIGINT/SIGTERM stops cleanly: the current cell's
// lease expires at the coordinator and re-queues elsewhere.
func runWorker(addr, coordinator string, parallel int, logger *slog.Logger) int {
	if coordinator == "" {
		fmt.Fprintln(os.Stderr, "-role worker requires -coordinator URL")
		return 2
	}
	reg := telemetry.NewRegistry()
	mux := telemetry.NewMux(reg)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"status":      "ok",
			"role":        "worker",
			"coordinator": coordinator,
			"go_version":  runtime.Version(),
			"version":     buildVersion(),
		})
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := newHTTPServer(mux)
	go func() { _ = srv.Serve(ln) }()
	defer srv.Close()
	logger.Info("worker starting", "addr", ln.Addr().String(),
		"coordinator", coordinator, "parallel", parallel, "version", buildVersion())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := fleet.RunWorker(ctx, fleet.WorkerConfig{
		Coordinator: coordinator,
		Parallel:    parallel,
		Reg:         reg,
		Log:         logger,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	logger.Info("worker stopped")
	return 0
}
