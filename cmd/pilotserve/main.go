// Command pilotserve is the batch simulation job server: it accepts
// fault-campaign specs over HTTP, runs them on one shared work-stealing
// pool (internal/jobs) with a content-addressed result cache, and
// streams per-job progress. Equal specs produce byte-identical reports,
// exactly like cmd/faultcampaign.
//
// Usage:
//
//	pilotserve [-addr :8091] [-parallel n] [-cache-dir dir]
//	           [-queue-units n] [-per-client n]
//
// API:
//
//	POST /v1/jobs        — submit a batch: {"jobs":[spec, ...]} where
//	                       each spec matches internal/campaign.Spec
//	                       (benchmarks, designs, protect, trials, rate,
//	                       seed, scale, sms; zero values select the
//	                       campaign defaults). Returns 202 and
//	                       {"jobs":[{"id":"job-1","units":n}, ...]}.
//	                       Admission is atomic per batch; a full queue
//	                       or a client over its in-flight limit gets
//	                       429 with Retry-After.
//	GET  /v1/jobs/{id}   — stream NDJSON progress lines
//	                       {"id","state","done","total"} until the
//	                       terminal line carries the report ("done") or
//	                       the error ("failed").
//	GET  /healthz        — 200 while serving, 503 while draining.
//	GET  /metrics        — serving + pool metrics (text, or
//	                       ?format=json); /debug/vars and /debug/pprof
//	                       ride along via the telemetry mux.
//
// SIGINT/SIGTERM drains gracefully: admission stops (503), running jobs
// finish, then the process exits 0. A second signal forces exit 3.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pilotserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		parallel   = fs.Int("parallel", jobs.DefaultWorkers(), "simulation pool worker count")
		cacheDir   = fs.String("cache-dir", "", "persist golden runs and cells here across jobs and restarts")
		queueUnits = fs.Int("queue-units", jobs.DefaultQueueDepth, "max admitted simulation jobs (golden runs + trials) in flight")
		perClient  = fs.Int("per-client", 8, "max in-flight batch jobs per client")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel <= 0 || *queueUnits <= 0 || *perClient <= 0 {
		fmt.Fprintln(os.Stderr, "parallel, queue-units, and per-client must be positive")
		return 2
	}

	s, err := newServer(serverConfig{
		workers:    *parallel,
		queueUnits: *queueUnits,
		perClient:  *perClient,
		cacheDir:   *cacheDir,
		reg:        telemetry.NewRegistry(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := &http.Server{Handler: s}
	fmt.Fprintf(os.Stderr, "pilotserve listening on %s (%d workers, %d queue units)\n",
		ln.Addr(), *parallel, *queueUnits)

	// First signal: drain — stop admitting, finish running jobs, exit 0.
	// Second signal: force exit 3 without waiting.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-sigc:
	}
	fmt.Fprintln(os.Stderr, "draining: waiting for running jobs (signal again to force)")
	s.beginDrain()
	drained := make(chan struct{})
	go func() {
		s.waitIdle()
		close(drained)
	}()
	select {
	case <-drained:
		_ = srv.Close()
		fmt.Fprintln(os.Stderr, "drained cleanly")
		return 0
	case <-sigc:
		fmt.Fprintln(os.Stderr, "forced shutdown: jobs abandoned")
		return 3
	}
}
