// Command pilotserve is the batch simulation job server: it accepts
// fault-campaign specs over HTTP, runs them on one shared work-stealing
// pool (internal/jobs) with a content-addressed result cache, and
// streams per-job progress. Equal specs produce byte-identical reports,
// exactly like cmd/faultcampaign.
//
// Usage:
//
//	pilotserve [-addr :8091] [-parallel n] [-cache-dir dir]
//	           [-queue-units n] [-per-client n]
//
// API:
//
//	POST /v1/jobs        — submit a batch: {"jobs":[spec, ...]} where
//	                       each spec matches internal/campaign.Spec
//	                       (benchmarks, designs, protect, trials, rate,
//	                       seed, scale, sms; zero values select the
//	                       campaign defaults). Returns 202 and
//	                       {"jobs":[{"id":"job-1","units":n}, ...]}.
//	                       Admission is atomic per batch; a full queue
//	                       or a client over its in-flight limit gets
//	                       429 with Retry-After.
//	GET  /v1/jobs/{id}   — stream NDJSON progress lines
//	                       {"id","state","done","total"} until the
//	                       terminal line carries the report ("done") or
//	                       the error ("failed").
//	GET  /healthz        — JSON {"status","uptime_seconds","go_version",
//	                       "version"}: 200 with status "ok" while
//	                       serving, 503 with status "draining" while
//	                       draining.
//	GET  /v1/jobs/{id}/trace
//	                     — the finished job's span tree: admission,
//	                       queue wait, campaign phases, golden runs,
//	                       cells, trials, and pool tasks, as
//	                       pilotrf-spans/v1 NDJSON (?format=perfetto for
//	                       Chrome/Perfetto trace_event JSON). 409 while
//	                       the job is still queued or running.
//	GET  /metrics        — serving + pool + cache metrics in Prometheus
//	                       text exposition (?format=json for a flat JSON
//	                       map, ?format=text for the legacy dump);
//	                       /debug/vars and /debug/pprof ride along via
//	                       the telemetry mux.
//
// Every request carries an X-Request-ID (the caller's, or a generated
// req-N), echoed on the response, stamped on each NDJSON progress line
// of the jobs it admitted, and attached to every structured log record.
// Requests also join W3C trace context: an inbound traceparent header's
// trace id is adopted (the caller's span id is kept as the job root
// span's w3c_parent attribute), otherwise one is minted; either way the
// response carries a traceparent naming a fresh server span, and the
// trace id is stamped on status lines and log records alongside the
// request id. Logs are JSON (log/slog) on stderr; per-endpoint latency
// and queue-wait histograms land in /metrics.
//
// SIGINT/SIGTERM drains gracefully: admission stops (503), running jobs
// finish, then the process exits 0. A second signal forces exit 3.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pilotserve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8091", "listen address")
		parallel   = fs.Int("parallel", jobs.DefaultWorkers(), "simulation pool worker count")
		cacheDir   = fs.String("cache-dir", "", "persist golden runs and cells here across jobs and restarts")
		queueUnits = fs.Int("queue-units", jobs.DefaultQueueDepth, "max admitted simulation jobs (golden runs + trials) in flight")
		perClient  = fs.Int("per-client", 8, "max in-flight batch jobs per client")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *parallel <= 0 || *queueUnits <= 0 || *perClient <= 0 {
		fmt.Fprintln(os.Stderr, "parallel, queue-units, and per-client must be positive")
		return 2
	}

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	s, err := newServer(serverConfig{
		workers:    *parallel,
		queueUnits: *queueUnits,
		perClient:  *perClient,
		cacheDir:   *cacheDir,
		reg:        telemetry.NewRegistry(),
		log:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	defer s.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	srv := &http.Server{Handler: s}
	logger.Info("listening", "addr", ln.Addr().String(),
		"workers", *parallel, "queue_units", *queueUnits, "version", buildVersion())

	// First signal: drain — stop admitting, finish running jobs, exit 0.
	// Second signal: force exit 3 without waiting.
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, err)
		return 1
	case <-sigc:
	}
	logger.Info("draining", "detail", "waiting for running jobs (signal again to force)")
	s.beginDrain()
	drained := make(chan struct{})
	go func() {
		s.waitIdle()
		close(drained)
	}()
	select {
	case <-drained:
		_ = srv.Close()
		logger.Info("drained cleanly")
		return 0
	case <-sigc:
		logger.Error("forced shutdown: jobs abandoned")
		return 3
	}
}
