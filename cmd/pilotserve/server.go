package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pilotrf/internal/campaign"
	"pilotrf/internal/fleet"
	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/trace"
)

// version is the build stamp reported by /healthz; stamp releases with
//
//	go build -ldflags "-X main.version=v1.2.3" ./cmd/pilotserve
//
// Unstamped builds fall back to the module version when the toolchain
// recorded one.
var version = "dev"

// buildVersion resolves the /healthz version stamp.
func buildVersion() string {
	if version != "dev" {
		return version
	}
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return version
}

// serverConfig sizes the job server. The zero value is not valid; use
// defaults() or the flag wiring in main.
type serverConfig struct {
	// workers is the simulation pool's worker count.
	workers int
	// queueUnits bounds the total admitted work, priced in simulation
	// jobs (Spec.NumJobs): golden runs plus trials. Submissions that
	// would exceed it get 429 + Retry-After.
	queueUnits int
	// perClient bounds in-flight batch jobs per client (X-Client-ID
	// header, else the remote host).
	perClient int
	// cacheDir, when non-empty, persists golden runs and cells across
	// jobs and restarts (content-addressed; corrupt entries recompute).
	cacheDir string
	// reg receives the serving metrics and the pool's counters, and
	// backs the /metrics and /debug/vars pages.
	reg *telemetry.Registry
	// log receives one structured record per request and per job state
	// change, each carrying the request id. nil discards them (tests).
	log *slog.Logger
	// role selects how admitted campaigns execute: "standalone" (or "")
	// runs them on the local pool exactly as before; "coordinator"
	// additionally mounts the fleet wire API (/v1/fleet/...) and shards
	// campaigns across registered workers, falling back to nothing — a
	// coordinator with no workers simply waits for one.
	role string
}

// serveJob is one admitted campaign and its observable progress.
type serveJob struct {
	id       string
	client   string
	units    int
	spec     campaign.Spec
	reqID    string    // X-Request-ID of the submitting request
	admitted time.Time // when admission accepted the job (queue-wait base)

	// Span tracing: every job records its own trace tree, rooted at the
	// job span and sharing the submitting request's trace id, served by
	// GET /v1/jobs/{id}/trace once the job is terminal.
	traceID string
	rec     *trace.Recorder
	root    *trace.ActiveSpan

	mu      sync.Mutex
	changed chan struct{} // closed and replaced on every update
	state   string        // "queued" | "running" | "done" | "failed"
	done    int
	total   int
	report  *campaign.Report
	errMsg  string
}

// update mutates the job under its lock and wakes every streamer.
func (j *serveJob) update(f func()) {
	j.mu.Lock()
	f()
	close(j.changed)
	j.changed = make(chan struct{})
	j.mu.Unlock()
}

// jobStatus is one NDJSON progress line of GET /v1/jobs/{id}. RequestID
// is the X-Request-ID of the submission that created the job, so a
// client can correlate every progress line with its batch.
type jobStatus struct {
	ID        string           `json:"id"`
	RequestID string           `json:"request_id,omitempty"`
	TraceID   string           `json:"trace_id,omitempty"`
	State     string           `json:"state"`
	Done      int              `json:"done"`
	Total     int              `json:"total"`
	Report    *campaign.Report `json:"report,omitempty"`
	Error     string           `json:"error,omitempty"`
}

// snapshot returns the job's current status line and the channel that
// closes on its next change.
func (j *serveJob) snapshot() (jobStatus, <-chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobStatus{
		ID: j.id, RequestID: j.reqID, TraceID: j.traceID, State: j.state, Done: j.done, Total: j.total,
		Report: j.report, Error: j.errMsg,
	}, j.changed
}

// server is the batch job service: admission control in front of one
// shared work-stealing pool and result cache.
type server struct {
	cfg   serverConfig
	mux   *http.ServeMux
	pool  *jobs.Pool
	cache *jobs.Cache
	fleet *fleet.Coordinator // non-nil in coordinator role
	log   *slog.Logger
	start time.Time

	// reqSeq mints X-Request-ID values for requests that arrive without
	// one.
	reqSeq atomic.Int64

	mu        sync.Mutex
	seq       int
	jobsByID  map[string]*serveJob
	queued    int // admitted units not yet finished
	perClient map[string]int
	draining  bool
	active    sync.WaitGroup

	mAccepted       *telemetry.Counter
	mCompleted      *telemetry.Counter
	mFailed         *telemetry.Counter
	mRejectedQueue  *telemetry.Counter
	mRejectedClient *telemetry.Counter
	gActive         *telemetry.Gauge
	gQueuedUnits    *telemetry.Gauge

	// Per-endpoint request latency and the admission-to-start queue
	// wait, in seconds.
	hSubmit    *telemetry.Histogram
	hJob       *telemetry.Histogram
	hHealth    *telemetry.Histogram
	hQueueWait *telemetry.Histogram
}

// newServer builds the service on cfg.reg's diagnostics mux. The caller
// owns serving (httptest or net/http) and must Close the server.
func newServer(cfg serverConfig) (*server, error) {
	if cfg.reg == nil {
		cfg.reg = telemetry.NewRegistry()
	}
	if cfg.workers <= 0 {
		cfg.workers = jobs.DefaultWorkers()
	}
	if cfg.queueUnits <= 0 {
		cfg.queueUnits = jobs.DefaultQueueDepth
	}
	if cfg.perClient <= 0 {
		cfg.perClient = 8
	}
	pool, err := jobs.New(jobs.Config{Workers: cfg.workers, Metrics: cfg.reg})
	if err != nil {
		return nil, err
	}
	var cache *jobs.Cache
	if cfg.cacheDir != "" {
		if cache, err = jobs.OpenCache(cfg.cacheDir); err != nil {
			pool.Close()
			return nil, err
		}
		cache.Metrics(cfg.reg)
	}
	logger := cfg.log
	if logger == nil {
		logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	s := &server{
		cfg:       cfg,
		pool:      pool,
		cache:     cache,
		log:       logger,
		start:     time.Now(),
		jobsByID:  make(map[string]*serveJob),
		perClient: make(map[string]int),

		mAccepted:       cfg.reg.Counter("serve_jobs_accepted"),
		mCompleted:      cfg.reg.Counter("serve_jobs_completed"),
		mFailed:         cfg.reg.Counter("serve_jobs_failed"),
		mRejectedQueue:  cfg.reg.Counter("serve_rejected_backpressure"),
		mRejectedClient: cfg.reg.Counter("serve_rejected_client_limit"),
		gActive:         cfg.reg.Gauge("serve_active_jobs"),
		gQueuedUnits:    cfg.reg.Gauge("serve_queued_units"),

		hSubmit:    cfg.reg.Histogram("serve_http_submit_seconds", telemetry.DefBuckets),
		hJob:       cfg.reg.Histogram("serve_http_job_seconds", telemetry.DefBuckets),
		hHealth:    cfg.reg.Histogram("serve_http_health_seconds", telemetry.DefBuckets),
		hQueueWait: cfg.reg.Histogram("serve_queue_wait_seconds", telemetry.DefBuckets),
	}
	s.mux = telemetry.NewMux(cfg.reg)
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.hHealth, s.handleHealth))
	s.mux.HandleFunc("/v1/jobs", s.instrument("submit", s.hSubmit, s.handleSubmit))
	s.mux.HandleFunc("/v1/jobs/", s.instrument("job", s.hJob, s.handleJob))
	switch cfg.role {
	case "", "standalone":
	case "coordinator":
		s.fleet = fleet.NewCoordinator(fleet.Config{
			Cache: cache,
			Reg:   cfg.reg,
			Log:   logger,
		})
		s.fleet.Mount(s.mux)
	default:
		pool.Close()
		return nil, fmt.Errorf("pilotserve: unknown role %q (want standalone or coordinator)", cfg.role)
	}
	return s, nil
}

// newHTTPServer wraps the handler in an http.Server hardened against
// slow clients: request headers must arrive within ReadHeaderTimeout
// and whole requests within ReadTimeout (a slowloris trickling bytes is
// cut off instead of pinning a connection forever), and idle
// keep-alives are recycled. WriteTimeout stays zero on purpose — job
// progress streams are long-lived by design.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
}

// retryAfterSeconds derives the 429 Retry-After value for a client key:
// deterministic per-client jitter in [1, 4] seconds, so a crowd of
// simultaneously rejected clients spreads its retries instead of
// stampeding back in lockstep, while any single client (and the tests
// pinning these values) sees a stable number. FNV-1a over the key
// seeds a splitmix64 finisher so near-identical keys decorrelate.
func retryAfterSeconds(client string) int {
	h := uint64(14695981039346656037)
	for i := 0; i < len(client); i++ {
		h ^= uint64(client[i])
		h *= 1099511628211
	}
	h += 0x9E3779B97F4A7C15
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= h >> 31
	return 1 + int(h%4)
}

// ctxKeyRequestID carries the request id through handler contexts;
// ctxKeyTrace carries the request's trace identity.
type ctxKey int

const (
	ctxKeyRequestID ctxKey = iota
	ctxKeyTrace
)

// reqIDFrom extracts the request id placed by instrument.
func reqIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(ctxKeyRequestID).(string)
	return id
}

// traceInfo is the per-request trace identity instrument derives from
// the inbound W3C traceparent (or mints): the trace id every span of
// the request's jobs shares, the server-side request span id echoed in
// the response traceparent, the caller's span id ("" when minted
// fresh), and the wall-clock handler start job root spans begin at.
type traceInfo struct {
	trace   string
	span    string
	parent  string
	startNS int64
}

// traceFrom extracts the trace identity placed by instrument.
func traceFrom(ctx context.Context) traceInfo {
	ti, _ := ctx.Value(ctxKeyTrace).(traceInfo)
	return ti
}

// statusWriter records the response code for the request log while
// passing Flush through so NDJSON streaming keeps working.
type statusWriter struct {
	http.ResponseWriter
	code int
}

// WriteHeader captures the status code before delegating.
func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer's Flusher, if any.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with request tracing: the caller's
// X-Request-ID is adopted (or one is minted), echoed on the response,
// threaded through the context, and stamped on the structured request
// record; the handler's latency lands in its endpoint histogram. The
// same applies to the W3C traceparent: an inbound header's trace id is
// honored (the caller's span id is remembered as the remote parent), a
// missing or malformed one gets a freshly derived trace id, and the
// response carries a well-formed traceparent naming this server's
// request span, so external tracers can stitch the job's span tree
// into their own.
func (s *server) instrument(endpoint string, lat *telemetry.Histogram, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rid := r.Header.Get("X-Request-ID")
		if rid == "" {
			rid = fmt.Sprintf("req-%d", s.reqSeq.Add(1))
		}
		w.Header().Set("X-Request-ID", rid)
		tid, parentSpan, ok := trace.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tid, parentSpan = trace.TraceID("pilotserve", rid), ""
		}
		ti := traceInfo{
			trace:   tid,
			span:    trace.SpanID(tid, "http", endpoint, rid),
			parent:  parentSpan,
			startNS: time.Now().UnixNano(),
		}
		w.Header().Set("traceparent", trace.FormatTraceparent(ti.trace, ti.span))
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		t0 := time.Now()
		ctx := context.WithValue(r.Context(), ctxKeyRequestID, rid)
		ctx = context.WithValue(ctx, ctxKeyTrace, ti)
		h(sw, r.WithContext(ctx))
		dur := time.Since(t0).Seconds()
		lat.Observe(dur)
		s.log.Info("request",
			"request_id", rid, "trace_id", ti.trace, "endpoint", endpoint, "method", r.Method,
			"path", r.URL.Path, "status", sw.code, "duration_seconds", dur)
	}
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close stops the pool and, in coordinator role, the fleet's lease
// janitor. Call after the last job drained.
func (s *server) Close() {
	if s.fleet != nil {
		s.fleet.Close()
	}
	s.pool.Close()
}

// beginDrain stops admitting work: new submissions get 503 and /healthz
// reports unhealthy so load balancers stop routing here. Running jobs
// continue; waitIdle blocks until they finish.
func (s *server) beginDrain() {
	s.mu.Lock()
	s.draining = true
	active := len(s.perClient)
	queued := s.queued
	s.mu.Unlock()
	s.log.Info("drain started", "queued_units", queued, "clients_in_flight", active)
}

// waitIdle blocks until every admitted job has finished.
func (s *server) waitIdle() { s.active.Wait() }

// clientID identifies the submitter for the per-client limit: the
// X-Client-ID header when present, else the remote host.
func clientID(r *http.Request) string {
	if id := r.Header.Get("X-Client-ID"); id != "" {
		return id
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	Jobs []campaign.Spec `json:"jobs"`
}

// submitResponse answers an accepted batch in submission order.
type submitResponse struct {
	Jobs []submittedJob `json:"jobs"`
}

type submittedJob struct {
	ID string `json:"id"`
	// Units is the job's admission price: golden runs + trials.
	Units int `json:"units"`
}

// healthResponse is the GET /healthz body: liveness plus enough build
// and uptime context to identify the process from a probe alone.
type healthResponse struct {
	Status        string  `json:"status"` // "ok" | "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Version       string  `json:"version"`
	// Fleet is the coordinator's live topology snapshot; absent (and
	// absent from the JSON) outside coordinator role, so standalone
	// health bodies are unchanged.
	Fleet *fleet.Health `json:"fleet,omitempty"`
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status, code := "ok", http.StatusOK
	if draining {
		status, code = "draining", http.StatusServiceUnavailable
	}
	body := healthResponse{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     runtime.Version(),
		Version:       buildVersion(),
	}
	if s.fleet != nil {
		h := s.fleet.Health()
		body.Fleet = &h
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(body)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req submitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Jobs) == 0 {
		http.Error(w, `empty batch: body must be {"jobs":[spec, ...]}`, http.StatusBadRequest)
		return
	}
	units := make([]int, len(req.Jobs))
	var total int
	for i, spec := range req.Jobs {
		n, err := spec.NumJobs()
		if err != nil {
			http.Error(w, fmt.Sprintf("job %d: %v", i, err), http.StatusBadRequest)
			return
		}
		units[i] = n
		total += n
	}
	client := clientID(r)
	rid := reqIDFrom(r.Context())
	ti := traceFrom(r.Context())

	// Admission is atomic over the whole batch: either every job is
	// accepted or none, so callers never chase partial batches.
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.log.Warn("batch rejected", "request_id", rid, "client", client, "reason", "draining")
		http.Error(w, "draining: not accepting new jobs", http.StatusServiceUnavailable)
		return
	}
	if s.perClient[client]+len(req.Jobs) > s.cfg.perClient {
		s.mu.Unlock()
		s.mRejectedClient.Inc()
		s.log.Warn("batch rejected", "request_id", rid, "client", client,
			"reason", "client limit", "limit", s.cfg.perClient)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(client)))
		http.Error(w, fmt.Sprintf("client %s has too many jobs in flight (limit %d)", client, s.cfg.perClient), http.StatusTooManyRequests)
		return
	}
	if s.queued+total > s.cfg.queueUnits {
		inFlight := s.queued
		s.mu.Unlock()
		s.mRejectedQueue.Inc()
		s.log.Warn("batch rejected", "request_id", rid, "client", client,
			"reason", "queue full", "in_flight_units", inFlight, "batch_units", total,
			"capacity", s.cfg.queueUnits)
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfterSeconds(client)))
		http.Error(w, fmt.Sprintf("queue full: %d units in flight, batch needs %d, capacity %d", inFlight, total, s.cfg.queueUnits), http.StatusTooManyRequests)
		return
	}
	resp := submitResponse{Jobs: make([]submittedJob, len(req.Jobs))}
	started := make([]*serveJob, len(req.Jobs))
	now := time.Now()
	for i, spec := range req.Jobs {
		s.seq++
		j := &serveJob{
			id:       fmt.Sprintf("job-%d", s.seq),
			client:   client,
			units:    units[i],
			spec:     spec,
			reqID:    rid,
			admitted: now,
			changed:  make(chan struct{}),
			state:    "queued",
			total:    units[i],
			traceID:  ti.trace,
		}
		// Each job records its own tree under the request's trace id.
		// The root stays open until the job is terminal; an inbound
		// traceparent's span is kept as an attribute (a link, not a
		// parent) so the served tree always has exactly one root.
		j.rec = trace.NewRecorder(true)
		j.root = j.rec.Root("job", ti.trace, j.id)
		j.root.SetWallStart(ti.startNS)
		j.root.SetAttr("id", j.id)
		j.root.SetAttr("request_id", rid)
		j.root.SetAttr("client", client)
		j.root.SetAttr("units", fmt.Sprintf("%d", j.units))
		if ti.parent != "" {
			j.root.SetAttr("w3c_parent", ti.parent)
		}
		admit := j.root.Context().Start("admit")
		admit.SetWallStart(ti.startNS)
		admit.SetAttr("units", fmt.Sprintf("%d", j.units))
		admit.End()
		s.jobsByID[j.id] = j
		started[i] = j
		resp.Jobs[i] = submittedJob{ID: j.id, Units: j.units}
	}
	s.queued += total
	s.perClient[client] += len(req.Jobs)
	s.active.Add(len(req.Jobs))
	s.mu.Unlock()

	s.gQueuedUnits.Add(int64(total))
	s.gActive.Add(int64(len(req.Jobs)))
	s.mAccepted.Add(uint64(len(req.Jobs)))
	ids := make([]string, len(started))
	for i, j := range started {
		ids[i] = j.id
	}
	s.log.Info("batch accepted", "request_id", rid, "client", client,
		"jobs", len(started), "units", total, "ids", ids)
	for _, j := range started {
		go s.runJob(j)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(resp)
}

// runJob executes one admitted campaign on the shared pool and
// publishes its progress.
func (s *server) runJob(j *serveJob) {
	defer func() {
		s.mu.Lock()
		s.queued -= j.units
		s.perClient[j.client]--
		if s.perClient[j.client] == 0 {
			delete(s.perClient, j.client)
		}
		s.mu.Unlock()
		s.gQueuedUnits.Add(-int64(j.units))
		s.gActive.Add(-1)
		s.active.Done()
	}()

	wait := time.Since(j.admitted)
	s.hQueueWait.Observe(wait.Seconds())
	queue := j.root.Context().Start("queue")
	queue.SetWallStart(j.admitted.UnixNano())
	queue.End()
	j.update(func() { j.state = "running" })
	s.log.Info("job running", "request_id", j.reqID, "trace_id", j.traceID, "job", j.id,
		"units", j.units, "queue_wait_seconds", wait.Seconds())
	t0 := time.Now()
	ctx := trace.NewContext(context.Background(), j.root.Context())
	progress := func(done, total int) {
		j.update(func() { j.done, j.total = done, total })
	}
	var rep campaign.Report
	var err error
	if s.fleet != nil {
		// Coordinator role: shard the campaign's cells across registered
		// fleet workers. The merge is canonical, so the report is
		// byte-identical to the standalone path below.
		rep, err = s.fleet.RunCampaign(ctx, j.spec, fleet.RunOptions{
			Progress: progress,
			Trace:    j.rec,
		})
	} else {
		rep, err = campaign.Run(ctx, j.spec, campaign.Options{
			Pool:     s.pool,
			Cache:    s.cache,
			Progress: progress,
		})
	}
	if err != nil {
		s.mFailed.Inc()
		s.log.Error("job failed", "request_id", j.reqID, "trace_id", j.traceID, "job", j.id,
			"duration_seconds", time.Since(t0).Seconds(), "error", err.Error())
		j.root.SetAttr("state", "failed")
		j.root.End() // before the terminal update: a client seeing it can fetch the tree
		j.update(func() { j.state = "failed"; j.errMsg = err.Error() })
		return
	}
	s.mCompleted.Inc()
	s.log.Info("job done", "request_id", j.reqID, "trace_id", j.traceID, "job", j.id,
		"duration_seconds", time.Since(t0).Seconds())
	j.root.SetAttr("state", "done")
	j.root.End()
	j.update(func() { j.state = "done"; j.report = &rep })
}

// handleJob streams a job's progress as NDJSON: one status line per
// state change (coalesced), ending with the terminal line that carries
// the report or the error.
func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if tid, ok := strings.CutSuffix(id, "/trace"); ok {
		s.handleJobTrace(w, r, tid)
		return
	}
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "job id required", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	j, ok := s.jobsByID[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		st, changed := j.snapshot()
		if err := enc.Encode(st); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		if st.State == "done" || st.State == "failed" {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
	}
}

// handleJobTrace serves GET /v1/jobs/{id}/trace: the job's recorded
// span tree as pilotrf-spans/v1 NDJSON (default) or a Perfetto
// trace_event document (?format=perfetto). The tree is only complete
// once the job is terminal — the root span closes right before the
// terminal status publishes — so mid-run requests get 409 and clients
// stream /v1/jobs/{id} to completion first. The tree is validated
// before serving; a failed job whose campaign was torn down mid-batch
// can legitimately have an inconsistent recording, reported as 500.
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	if id == "" || strings.Contains(id, "/") {
		http.Error(w, "job id required", http.StatusNotFound)
		return
	}
	s.mu.Lock()
	j, ok := s.jobsByID[id]
	s.mu.Unlock()
	if !ok {
		http.Error(w, "unknown job "+id, http.StatusNotFound)
		return
	}
	st, _ := j.snapshot()
	if st.State != "done" && st.State != "failed" {
		http.Error(w, "job "+id+" is "+st.State+"; the trace is served once it is done or failed", http.StatusConflict)
		return
	}
	spans := j.rec.Spans()
	if _, err := trace.BuildTree(spans); err != nil {
		s.log.Error("trace invalid", "request_id", reqIDFrom(r.Context()), "job", id, "error", err.Error())
		http.Error(w, "recorded span tree is inconsistent: "+err.Error(), http.StatusInternalServerError)
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "ndjson":
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := trace.WriteSpans(w, spans); err != nil {
			s.log.Error("trace write failed", "job", id, "error", err.Error())
		}
	case "perfetto":
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WritePerfetto(w, spans); err != nil {
			s.log.Error("trace write failed", "job", id, "error", err.Error())
		}
	default:
		http.Error(w, "unknown format (want ndjson or perfetto)", http.StatusBadRequest)
	}
}
