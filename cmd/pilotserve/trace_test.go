package main

import (
	"bufio"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"

	"pilotrf/internal/trace"
)

// TestTraceparentPropagation is the end-to-end tracing contract: an
// inbound W3C traceparent is honored (its trace id flows through NDJSON
// status lines, slog records, and the served span tree; the caller's
// span id is kept as the root's w3c_parent link), the response carries
// a well-formed traceparent naming a fresh server-side span, and the
// request id and trace id agree across every surface.
func TestTraceparentPropagation(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, serverConfig{
		workers: 1,
		log:     slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	inTrace := trace.TraceID("client-trace")
	inSpan := trace.SpanID("client-span")
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(`{"jobs":[`+testSpecJSON+`]}`))
	req.Header.Set("traceparent", trace.FormatTraceparent(inTrace, inSpan))
	req.Header.Set("X-Request-ID", "span-me-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	gotTrace, gotSpan, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("response traceparent %q malformed", resp.Header.Get("traceparent"))
	}
	if gotTrace != inTrace {
		t.Fatalf("response trace id %s, want inbound %s", gotTrace, inTrace)
	}
	if gotSpan == inSpan {
		t.Fatal("server echoed the caller's span id instead of minting its own")
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	jobID := sr.Jobs[0].ID

	// Every NDJSON status line carries the inbound trace id alongside
	// the request id.
	stream, err := http.Get(ts.URL + "/v1/jobs/" + jobID)
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lines := 0
	for sc.Scan() {
		var st jobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.TraceID != inTrace {
			t.Fatalf("NDJSON line %d trace_id %q, want %s", lines, st.TraceID, inTrace)
		}
		if st.RequestID != "span-me-1" {
			t.Fatalf("NDJSON line %d request_id %q, want span-me-1", lines, st.RequestID)
		}
		lines++
	}
	stream.Body.Close()
	if lines == 0 {
		t.Fatal("no NDJSON lines")
	}

	// The served span tree: valid, rooted at the job span, same trace
	// id, w3c_parent links the caller's span, and the campaign nests
	// under the job with admit/queue alongside.
	traceResp, err := http.Get(ts.URL + "/v1/jobs/" + jobID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	if traceResp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(traceResp.Body)
		t.Fatalf("GET trace: status %d: %s", traceResp.StatusCode, body)
	}
	if ct := traceResp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("trace content type %q", ct)
	}
	spans, err := trace.ReadSpans(traceResp.Body)
	traceResp.Body.Close()
	if err != nil {
		t.Fatalf("trace endpoint served unreadable spans: %v", err)
	}
	root, err := trace.BuildTree(spans)
	if err != nil {
		t.Fatalf("served tree invalid: %v", err)
	}
	if root.Name != "job" || root.Trace != inTrace {
		t.Fatalf("root %q trace %s, want job span under %s", root.Name, root.Trace, inTrace)
	}
	if root.Attrs["w3c_parent"] != inSpan {
		t.Fatalf("root w3c_parent %q, want caller span %s", root.Attrs["w3c_parent"], inSpan)
	}
	if root.Attrs["request_id"] != "span-me-1" || root.Attrs["id"] != jobID {
		t.Fatalf("root attrs disagree with request/job ids: %v", root.Attrs)
	}
	names := map[string]int{}
	for _, s := range spans {
		names[s.Name]++
	}
	for _, want := range []string{"admit", "queue", "campaign", "cell", "trial", "pool.task"} {
		if names[want] == 0 {
			t.Errorf("served tree missing %s span (have %v)", want, names)
		}
	}

	// slog records carry the trace id on request and job lifecycle
	// lines.
	logs := logBuf.String()
	if got := strings.Count(logs, `"trace_id":"`+inTrace+`"`); got < 3 {
		t.Errorf("inbound trace id appears %d times in the log, want >= 3:\n%s", got, logs)
	}
}

// TestTraceparentMinted: a request without a traceparent gets a
// well-formed minted one, and the job's tree roots under that minted
// trace with no w3c_parent link.
func TestTraceparentMinted(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 1})
	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	tid, _, ok := trace.ParseTraceparent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("minted traceparent %q malformed", resp.Header.Get("traceparent"))
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	last := streamJob(t, ts, sr.Jobs[0].ID)
	if last.TraceID != tid {
		t.Fatalf("status trace_id %q, want minted %s", last.TraceID, tid)
	}
	traceResp, err := http.Get(ts.URL + "/v1/jobs/" + sr.Jobs[0].ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer traceResp.Body.Close()
	spans, err := trace.ReadSpans(traceResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	root, err := trace.BuildTree(spans)
	if err != nil {
		t.Fatal(err)
	}
	if root.Trace != tid {
		t.Fatalf("tree trace %s, want minted %s", root.Trace, tid)
	}
	if _, linked := root.Attrs["w3c_parent"]; linked {
		t.Fatal("minted trace should have no w3c_parent link")
	}
}

// TestJobTraceEndpointStates covers the endpoint's error surface:
// unknown job, mid-run 409, bad format, and the Perfetto conversion.
func TestJobTraceEndpointStates(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1})

	if resp, err := http.Get(ts.URL + "/v1/jobs/job-999/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job trace: status %d, want 404", resp.StatusCode)
		}
	}

	// A still-running job answers 409 (white-box: plant a running job).
	rec := trace.NewRecorder(true)
	running := &serveJob{
		id: "job-test-running", state: "running", changed: make(chan struct{}),
		rec: rec, root: rec.Root("job", trace.TraceID("t"), "job-test-running"),
		admitted: time.Now(),
	}
	s.mu.Lock()
	s.jobsByID[running.id] = running
	s.mu.Unlock()
	if resp, err := http.Get(ts.URL + "/v1/jobs/job-test-running/trace"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("running job trace: status %d, want 409", resp.StatusCode)
		}
	}

	// Finish a real job, then exercise formats.
	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	streamJob(t, ts, sr.Jobs[0].ID)

	if resp, err := http.Get(ts.URL + "/v1/jobs/" + sr.Jobs[0].ID + "/trace?format=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bogus format: status %d, want 400", resp.StatusCode)
		}
	}

	pf, err := http.Get(ts.URL + "/v1/jobs/" + sr.Jobs[0].ID + "/trace?format=perfetto")
	if err != nil {
		t.Fatal(err)
	}
	defer pf.Body.Close()
	if pf.StatusCode != http.StatusOK {
		t.Fatalf("perfetto: status %d", pf.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(pf.Body).Decode(&doc); err != nil {
		t.Fatalf("perfetto output not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) < 5 {
		t.Fatalf("perfetto trace has %d events", len(doc.TraceEvents))
	}
}
