package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"

	"pilotrf/internal/campaign"
	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
)

// testSpecJSON is a one-cell, one-trial campaign: cheap, but it still
// exercises the golden run and a trial (2 admission units).
const testSpecJSON = `{"benchmarks":["sgemm"],"designs":["part-adaptive"],"protect":["none"],"trials":1,"scale":0.05,"sms":1,"seed":7}`

func newTestServer(t *testing.T, cfg serverConfig) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// streamJob reads the job's NDJSON stream to its terminal line,
// asserting monotonic progress along the way.
func streamJob(t *testing.T, ts *httptest.Server, id string) jobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var last jobStatus
	lastDone := -1
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		var st jobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if st.Done < lastDone {
			t.Errorf("progress went backwards: %d after %d", st.Done, lastDone)
		}
		lastDone = st.Done
		last = st
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if last.State != "done" && last.State != "failed" {
		t.Fatalf("stream ended in state %q", last.State)
	}
	return last
}

// TestSubmitAndStream drives the happy path end to end: a two-job batch
// is accepted with deterministic ids, both streams end in "done", and
// each report is byte-identical to running the same spec directly
// through the campaign engine.
func TestSubmitAndStream(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 2})
	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`,`+testSpecJSON+`]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d, want 202", resp.StatusCode)
	}
	var sub submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	if len(sub.Jobs) != 2 || sub.Jobs[0].ID != "job-1" || sub.Jobs[1].ID != "job-2" {
		t.Fatalf("submit response %+v", sub)
	}

	var spec campaign.Spec
	if err := json.Unmarshal([]byte(testSpecJSON), &spec); err != nil {
		t.Fatal(err)
	}
	pool, err := jobs.New(jobs.Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	want, err := campaign.Run(context.Background(), spec, campaign.Options{Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)

	for _, j := range sub.Jobs {
		final := streamJob(t, ts, j.ID)
		if final.State != "done" {
			t.Fatalf("%s failed: %s", j.ID, final.Error)
		}
		if final.Done != final.Total || final.Total != j.Units {
			t.Errorf("%s finished at %d/%d, submit priced %d units", j.ID, final.Done, final.Total, j.Units)
		}
		gotJSON, _ := json.Marshal(final.Report)
		if !bytes.Equal(gotJSON, wantJSON) {
			t.Errorf("%s report differs from direct campaign.Run:\n--- got\n%s\n--- want\n%s", j.ID, gotJSON, wantJSON)
		}
	}
}

// TestHealthAndMetrics: /healthz answers ok, and the serving counters
// show up on the telemetry mux's /metrics page.
func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 1, reg: telemetry.NewRegistry()})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	sub := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	var sr submitResponse
	if err := json.NewDecoder(sub.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()
	streamJob(t, ts, sr.Jobs[0].ID)

	mresp, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var m map[string]float64
	if err := json.NewDecoder(mresp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m["serve_jobs_accepted"] < 1 || m["serve_jobs_completed"] < 1 {
		t.Errorf("metrics missing serve counters: %v", m)
	}
	if m["jobs_submitted"] == 0 {
		t.Errorf("pool metrics absent from the shared registry: %v", m)
	}
}

// TestQueueBackpressure: a batch pricing past queue-units is rejected
// atomically with 429 + Retry-After before anything runs.
func TestQueueBackpressure(t *testing.T) {
	// Each test job prices 2 units; two of them exceed capacity 3.
	_, ts := newTestServer(t, serverConfig{workers: 1, queueUnits: 3})
	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`,`+testSpecJSON+`]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	// A batch that fits is still accepted afterwards: rejection admitted
	// nothing.
	ok := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	defer ok.Body.Close()
	if ok.StatusCode != http.StatusAccepted {
		t.Fatalf("fitting batch status %d, want 202", ok.StatusCode)
	}
	var sr submitResponse
	if err := json.NewDecoder(ok.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	streamJob(t, ts, sr.Jobs[0].ID)
}

// TestPerClientLimit: one client cannot hold more in-flight jobs than
// its limit; a different client is unaffected.
func TestPerClientLimit(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 1, perClient: 1})
	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`,`+testSpecJSON+`]}`)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(`{"jobs":[`+testSpecJSON+`]}`))
	req.Header.Set("X-Client-ID", "other-client")
	other, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Body.Close()
	if other.StatusCode != http.StatusAccepted {
		t.Fatalf("other client status %d, want 202", other.StatusCode)
	}
	var sr submitResponse
	if err := json.NewDecoder(other.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	streamJob(t, ts, sr.Jobs[0].ID)
}

// TestBadRequests: invalid specs, empty batches, unknown ids, and wrong
// methods produce the right statuses.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, serverConfig{workers: 1})
	cases := []struct {
		method, path, body string
		want               int
	}{
		{http.MethodPost, "/v1/jobs", `{"jobs":[{"designs":["warp9"]}]}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{"jobs":[]}`, http.StatusBadRequest},
		{http.MethodPost, "/v1/jobs", `{not json`, http.StatusBadRequest},
		{http.MethodGet, "/v1/jobs", "", http.StatusMethodNotAllowed},
		{http.MethodGet, "/v1/jobs/job-999", "", http.StatusNotFound},
		{http.MethodPost, "/v1/jobs/job-1", "", http.StatusMethodNotAllowed},
	}
	for _, c := range cases {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, strings.NewReader(c.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.want {
			t.Errorf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.want)
		}
	}
}

// TestDrainStopsAdmission: after beginDrain, submissions get 503 and
// /healthz reports unhealthy, but already-running jobs still finish and
// stream.
func TestDrainStopsAdmission(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1})
	sub := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	var sr submitResponse
	if err := json.NewDecoder(sub.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	sub.Body.Close()

	s.beginDrain()
	rej := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	rej.Body.Close()
	if rej.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: status %d, want 503", rej.StatusCode)
	}
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if health.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: status %d, want 503", health.StatusCode)
	}

	final := streamJob(t, ts, sr.Jobs[0].ID)
	if final.State != "done" {
		t.Fatalf("in-flight job did not finish during drain: %+v", final)
	}
	s.waitIdle()
}

// TestCacheSharedAcrossJobs: with a cache directory, a repeated spec's
// second job runs zero new simulations — the first job's golden run and
// cells serve it.
func TestCacheSharedAcrossJobs(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, ts := newTestServer(t, serverConfig{workers: 1, cacheDir: t.TempDir() + "/cache", reg: reg})
	for i := 0; i < 2; i++ {
		resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
		var sr submitResponse
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if final := streamJob(t, ts, sr.Jobs[0].ID); final.State != "done" {
			t.Fatalf("job %d failed: %s", i, final.Error)
		}
	}
	if st := s.cache.Stats(); st.Hits == 0 {
		t.Errorf("second job hit the cache 0 times: %+v", st)
	}
	if n := reg.Map()["jobs_submitted"]; n != 2 {
		t.Errorf("pool ran %v simulations, want 2 (golden + trial, once)", n)
	}
}

// TestRequestIDTracing: a caller-supplied X-Request-ID is echoed on the
// response and stamped on every NDJSON line of the jobs it admitted; a
// request without one gets a generated req-N id; and the structured log
// carries the id on request, admission, and job lifecycle records.
func TestRequestIDTracing(t *testing.T) {
	var logBuf syncBuffer
	_, ts := newTestServer(t, serverConfig{
		workers: 1,
		log:     slog.New(slog.NewJSONHandler(&logBuf, nil)),
	})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", strings.NewReader(`{"jobs":[`+testSpecJSON+`]}`))
	req.Header.Set("X-Request-ID", "trace-me-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("X-Request-ID"); got != "trace-me-42" {
		t.Errorf("submit echoed X-Request-ID %q, want trace-me-42", got)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Every NDJSON progress line carries the submitting request's id.
	stream, err := http.Get(ts.URL + "/v1/jobs/" + sr.Jobs[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if got := stream.Header.Get("X-Request-ID"); got == "" || strings.Contains(got, "trace-me") {
		t.Errorf("stream request got X-Request-ID %q, want a fresh generated id", got)
	}
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lines := 0
	for sc.Scan() {
		var st jobStatus
		if err := json.Unmarshal(sc.Bytes(), &st); err != nil {
			t.Fatal(err)
		}
		if st.RequestID != "trace-me-42" {
			t.Fatalf("NDJSON line %d carries request_id %q, want trace-me-42", lines, st.RequestID)
		}
		lines++
	}
	if lines == 0 {
		t.Fatal("no NDJSON lines")
	}

	// A request without the header gets a generated id.
	health, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health.Body.Close()
	if got := health.Header.Get("X-Request-ID"); !strings.HasPrefix(got, "req-") {
		t.Errorf("generated id %q, want req-N", got)
	}

	// The structured log mentions the id on request, admission, and job
	// lifecycle records.
	logs := logBuf.String()
	for _, want := range []string{`"msg":"request"`, `"msg":"batch accepted"`, `"msg":"job running"`, `"msg":"job done"`} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %s:\n%s", want, logs)
		}
	}
	if got := strings.Count(logs, `"request_id":"trace-me-42"`); got < 3 {
		t.Errorf("request id appears %d times in the log, want >= 3:\n%s", got, logs)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// written from request and job goroutines.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestHealthzJSON: /healthz reports status, uptime, Go version, and the
// build stamp; draining flips status and the code to 503.
func TestHealthzJSON(t *testing.T) {
	s, ts := newTestServer(t, serverConfig{workers: 1})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var h healthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status %q, want ok", h.Status)
	}
	if h.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", h.UptimeSeconds)
	}
	if h.GoVersion != runtime.Version() {
		t.Errorf("go_version %q, want %q", h.GoVersion, runtime.Version())
	}
	if h.Version == "" {
		t.Error("empty version stamp")
	}

	s.beginDrain()
	dresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	if dresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz status %d, want 503", dresp.StatusCode)
	}
	var dh healthResponse
	if err := json.NewDecoder(dresp.Body).Decode(&dh); err != nil {
		t.Fatal(err)
	}
	if dh.Status != "draining" {
		t.Errorf("draining status %q", dh.Status)
	}
}

// TestMetricsPrometheus: after a served job, /metrics renders valid
// Prometheus exposition with the endpoint latency histograms, the
// queue-wait histogram, and the serving counters.
func TestMetricsPrometheus(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, ts := newTestServer(t, serverConfig{workers: 1, reg: reg, cacheDir: t.TempDir()})
	resp := submit(t, ts, `{"jobs":[`+testSpecJSON+`]}`)
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	streamJob(t, ts, sr.Jobs[0].ID)

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q, want Prometheus text exposition", ct)
	}
	body, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE serve_http_submit_seconds histogram",
		`serve_http_submit_seconds_bucket{le="+Inf"}`,
		"serve_http_submit_seconds_count",
		"# TYPE serve_http_job_seconds histogram",
		"# TYPE serve_queue_wait_seconds histogram",
		"serve_queue_wait_seconds_count 1",
		"# TYPE serve_jobs_completed counter",
		"serve_jobs_completed 1",
		// Pool and cache internals surface alongside the serving
		// series: steals/panics from the work-stealing pool, hit/miss
		// accounting from the content-addressed result cache.
		"# TYPE jobs_steals counter",
		"# TYPE jobs_panics counter",
		"# TYPE cache_hits counter",
		"# TYPE cache_misses counter",
		"# TYPE cache_corrupt counter",
		"# TYPE cache_puts counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Queue-wait observes once per job; the submit histogram once per
	// POST.
	if h := reg.Histogram("serve_http_submit_seconds", telemetry.DefBuckets); h.Count() != 1 {
		t.Errorf("submit histogram count %d, want 1", h.Count())
	}
}
