// Command experiments regenerates every table and figure of the paper's
// evaluation and prints them alongside the paper's reported values.
//
// Usage:
//
//	experiments [-scale f] [-sms n] [-json out.json] [-http :6060]
//	            [-bench-json out.json] [-bench-samples n]
//	            [-bench-history h.ndjson -bench-label PR8
//	             -bench-commit rev -bench-time-unix t]
//	            [-only fig1,table1,fig2,fig4,table3,table4,yield,fig10,
//	             fig11,leakage,fig12,sens,fig13,rfc,swap,area,dynamics,
//	             voltage,scorecard,ablation,energy,dse]
//	            [-designs mrf-stv,part-adaptive,...]
//
// -only dse sweeps the registered register-file design schemes across
// their knob grids and prints the energy-vs-IPC Pareto frontier;
// -designs restricts that sweep to a comma-separated scheme list (an
// unknown name is a usage error that lists the valid ones).
//
// -http serves expvar and net/http/pprof on the given address so long
// sweeps can be profiled live (go tool pprof http://host/debug/pprof/profile).
//
// -bench-json runs the root bench_test.go harness (go test -run=^$
// -bench=. -benchtime=1x) and writes the parsed results — ns/op plus
// every b.ReportMetric headline quantity — as JSON to the given path,
// then exits. It requires the go toolchain on PATH. -bench-samples N
// repeats the harness N times; the multi-sample run is appended to a
// pilotrf-benchhistory/v1 file via -bench-history (with -bench-label
// naming the run), which is how cmd/benchwatch record drives this
// suite. Deterministic metrics must be bit-identical across samples;
// any variance is reported as a violation (exit 1), never averaged
// away.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pilotrf/internal/benchjson"
	"pilotrf/internal/benchstore"
	"pilotrf/internal/design"
	"pilotrf/internal/dse"
	"pilotrf/internal/experiments"
	"pilotrf/internal/jobs"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/trace"
)

// benchOpts configures the bench-harness path of cmd/experiments.
type benchOpts struct {
	jsonPath    string // -bench-json: write sample 1 as a pilotrf-bench/v1 report
	samples     int    // -bench-samples: harness passes to run
	historyPath string // -bench-history: append the run to this history file
	label       string // -bench-label: run label in the history
	commit      string // -bench-commit: git revision recorded with the run
	timeUnix    int64  // -bench-time-unix: injected timestamp (0 = now)
}

// runBench executes the harness opts.samples times, writes the
// single-sample snapshot and/or appends the multi-sample history
// record. Returns the process exit code: 0 ok, 1 failure or
// deterministic-metric variance, 2 usage error.
func runBench(opts benchOpts) int {
	if opts.samples < 1 {
		fmt.Fprintf(os.Stderr, "-bench-samples must be >= 1, got %d\n", opts.samples)
		return 2
	}
	if opts.samples > 1 && opts.historyPath == "" {
		fmt.Fprintln(os.Stderr, "-bench-samples > 1 needs -bench-history: a pilotrf-bench/v1 snapshot holds a single sample")
		return 2
	}
	if (opts.historyPath == "") != (opts.label == "") {
		fmt.Fprintln(os.Stderr, "-bench-history and -bench-label go together")
		return 2
	}

	harness := experiments.BenchHarness{}
	runs := make([][]benchjson.Benchmark, 0, opts.samples)
	for i := 1; i <= opts.samples; i++ {
		fmt.Fprintf(os.Stderr, "sample %d/%d: %s\n", i, opts.samples, harness.CommandLine())
		benches, err := harness.RunSample()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		runs = append(runs, benches)
	}

	if opts.jsonPath != "" {
		rep := benchjson.NewReport(harness.CommandLine(), runs[0])
		f, err := os.Create(opts.jsonPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := rep.Write(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(runs[0]), opts.jsonPath)
	}

	if opts.historyPath != "" {
		when := opts.timeUnix
		if when == 0 {
			when = time.Now().Unix()
		}
		rec, err := benchstore.MergeSamples(opts.label, opts.commit, when, benchstore.CurrentHost(), runs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			var ve *benchstore.VarianceError
			if errors.As(err, &ve) {
				fmt.Fprintln(os.Stderr, "deterministic-metric variance across samples is a simulator bug, not noise; nothing was recorded")
			}
			return 1
		}
		if err := benchstore.AppendRecordFile(opts.historyPath, rec); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("recorded %q: %d benchmarks x %d samples -> %s\n",
			opts.label, len(rec.Benchmarks), opts.samples, opts.historyPath)
	}
	return 0
}

func main() {
	os.Exit(run())
}

// run executes the sweep and returns the process exit code: 0 on
// success, 1 on failure, 3 when a SIGINT/SIGTERM stopped the sweep
// early (the experiments that finished are still printed and the JSON
// report still written).
func run() int {
	var (
		scale        = flag.Float64("scale", 1, "workload CTA scale factor")
		sms          = flag.Int("sms", 2, "simulated SMs")
		only         = flag.String("only", "", "comma-separated experiment list (empty = all)")
		jsonPath     = flag.String("json", "", "also write the results as JSON to this file")
		parallel     = flag.Int("parallel", jobs.DefaultWorkers(), "worker count for pre-running the shared simulations (0 disables the warm pass)")
		httpAddr     = flag.String("http", "", "serve expvar/pprof on this address during the sweep (e.g. :6060)")
		benchJSON    = flag.String("bench-json", "", "run the root benchmark harness and write sample 1 as JSON to this file, then exit")
		benchSamples = flag.Int("bench-samples", 1, "harness passes to run for -bench-json/-bench-history")
		benchHistory = flag.String("bench-history", "", "append the multi-sample run to this pilotrf-benchhistory/v1 file")
		benchLabel   = flag.String("bench-label", "", "run label for the -bench-history record (e.g. PR8)")
		benchCommit  = flag.String("bench-commit", "", "git revision recorded with the -bench-history record")
		benchTime    = flag.Int64("bench-time-unix", 0, "injected timestamp for the -bench-history record (0 = now)")
		spansPath    = flag.String("trace-spans", "", "write the warm pass's span tree here as pilotrf-spans/v1 NDJSON (requires -parallel > 0)")
		designs      = flag.String("designs", "", "comma-separated design scheme list for the dse section (empty = all registered)")
	)
	flag.Parse()

	var designList []string
	for _, name := range strings.Split(*designs, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		if _, ok := design.Lookup(name); !ok {
			fmt.Fprintf(os.Stderr, "unknown design %q (valid: %s)\n", name, strings.Join(design.SortedNames(), ", "))
			return 2
		}
		designList = append(designList, name)
	}

	if *benchJSON != "" || *benchHistory != "" {
		return runBench(benchOpts{
			jsonPath:    *benchJSON,
			samples:     *benchSamples,
			historyPath: *benchHistory,
			label:       *benchLabel,
			commit:      *benchCommit,
			timeUnix:    *benchTime,
		})
	}

	if *httpAddr != "" {
		srv, err := telemetry.StartLive(*httpAddr, telemetry.NewRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving expvar/pprof on %s\n", srv.Addr)
	}

	report := map[string]interface{}{
		"scale": *scale,
		"sms":   *sms,
	}
	writeReport := func() int {
		if *jsonPath == "" {
			return 0
		}
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("JSON report written to %s\n", *jsonPath)
		return 0
	}

	// SIGINT/SIGTERM stop the sweep at the next experiment boundary:
	// sel() starts refusing every section, the partial JSON report still
	// flushes, and the process exits 3.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	stopped := false
	interrupted := func() bool {
		if !stopped {
			select {
			case <-sigc:
				stopped = true
			default:
			}
		}
		return stopped
	}

	want := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	sel := func(name string) bool {
		return !interrupted() && (len(want) == 0 || want[name])
	}

	r := experiments.NewRunner(*scale, *sms)
	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "parallel must be >= 0, got %d\n", *parallel)
		return 2
	}
	if *parallel > 0 {
		r.Workers = *parallel
		if *spansPath != "" {
			r.Trace = trace.NewRecorder(true)
		}
		r.Warm()
		if r.Trace != nil {
			spans := r.Trace.Spans()
			if err := trace.WriteSpansFile(*spansPath, spans); err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 1
			}
			fmt.Fprintf(os.Stderr, "wrote %d warm-pass spans to %s\n", len(spans), *spansPath)
		}
	} else if *spansPath != "" {
		fmt.Fprintln(os.Stderr, "-trace-spans requires -parallel > 0 (the warm pass is what gets traced)")
		return 2
	}

	if sel("fig1") {
		fmt.Println("=== Figure 1: 40-stage FO4 inverter chain delay vs Vdd (7nm FinFET) ===")
		fig1 := experiments.Figure1()
		report["figure1"] = fig1
		for _, p := range fig1 {
			fmt.Printf("  Vdd=%.3f V   delay=%8.3f ns\n", p.Vdd, p.DelayNS)
		}
		fmt.Println()
	}

	if sel("table3") {
		fmt.Println("=== Table III: 8T SRAM cell characteristics (paper: 7.505e-4/2.372e-3/2.427e-4 A/um; SNM 0.092/0.144/0.096 V) ===")
		t3 := experiments.Table3()
		report["table3"] = t3
		for _, row := range t3 {
			fmt.Printf("  %-12s Vdd=%.2f V   Ion=%.3e A/um   SNM=%.3f V\n", row.Design, row.Vdd, row.IOn, row.SNM)
		}
		fmt.Println()
	}

	if sel("yield") {
		fmt.Println("=== SRAM Monte Carlo yield (Section IV-A: 8T usable at NTV, 6T not) ===")
		yield := experiments.SRAMYieldStudy(20000, 1)
		report["sram_yield"] = yield
		for _, row := range yield {
			fmt.Printf("  %-4s @ %.2f V   yield=%.4f   mean SNM=%.3f V\n", row.Cell, row.Vdd, row.Yield, row.MeanV)
		}
		fmt.Println()
	}

	if sel("table4") {
		fmt.Println("=== Table IV: partition characteristics (paper: 5.25/7.65/7.03/14.9 pJ; 7.28/7.28/13.4/33.8 mW) ===")
		t4 := experiments.Table4()
		report["table4"] = t4
		for _, row := range t4 {
			fmt.Printf("  %-9s access=%6.2f pJ   leakage=%6.2f mW   size=%4.0f KB   cycles=%d\n",
				row.Name, row.AccessEnergyPJ, row.LeakageMW, row.SizeKB, row.AccessCycles)
		}
		fmt.Println()
	}

	if sel("area") {
		a := experiments.Area()
		report["area"] = a
		fmt.Println("=== Area (Section V-A; paper: 0.200 -> 0.214 mm^2, <10%) ===")
		fmt.Printf("  baseline=%.3f mm^2   proposed=%.3f mm^2   overhead=%.1f%%\n\n",
			a.BaselineMM2, a.ProposedMM2, a.OverheadPct)
	}

	if sel("swap") {
		fmt.Println("=== Swapping table (Section III-B; paper: 105/95/55 ps) ===")
		swaps := experiments.SwapTableDelays()
		report["swap_table"] = swaps
		for _, row := range swaps {
			fmt.Printf("  %-11s %6.1f ps  (%.1f%% of the 900 MHz cycle)\n", row.Tech, row.DelayPS, row.CycleFraction*100)
		}
		fmt.Printf("  +1-cycle conservative variant slowdown: %.3fx (paper: <1%%)\n\n",
			experiments.SwapTablePenalty(r))
	}

	if sel("table1") {
		fmt.Println("=== Table I: benchmark runtime information ===")
		fmt.Printf("  %-10s cat  regs  thr/CTA   pilot%% (measured)   pilot%% (paper)\n", "bench")
		t1 := experiments.Table1(r)
		report["table1"] = t1
		for _, row := range t1 {
			fmt.Printf("  %-10s  %d   %3d   %5d     %8.2f            %8.2f\n",
				row.Benchmark, row.Category, row.RegsPerThread, row.ThreadsPerCTA,
				row.MeasuredPilotPct, row.PaperPilotPct)
		}
		fmt.Println()
	}

	if sel("fig2") {
		res := experiments.Figure2(r)
		report["figure2"] = res
		fmt.Println("=== Figure 2: accesses to the top-N registers (paper avg: 62/72/77%) ===")
		for _, row := range res.Rows {
			fmt.Printf("  %-10s top3=%.2f  top4=%.2f  top5=%.2f\n", row.Benchmark, row.Top3, row.Top4, row.Top5)
		}
		fmt.Printf("  AVERAGE    top3=%.2f  top4=%.2f  top5=%.2f\n\n", res.Avg3, res.Avg4, res.Avg5)
	}

	if sel("fig4") {
		fmt.Println("=== Figure 4: profiling efficiency (FRF capture, deployed) ===")
		fmt.Printf("  %-10s cat  compiler  pilot  hybrid  optimal\n", "bench")
		f4 := experiments.Figure4(r)
		report["figure4"] = f4
		for _, row := range f4 {
			fmt.Printf("  %-10s  %d     %.2f     %.2f    %.2f     %.2f\n",
				row.Benchmark, row.Category, row.Compiler, row.Pilot, row.Hybrid, row.Optimal)
		}
		fmt.Printf("  sgemm static-first-4 share: %.2f (paper: ~0.25)\n\n",
			experiments.StaticFirstNShare(r, "sgemm"))
	}

	if sel("dynamics") {
		fmt.Println("=== Code dynamics (Section III-A2: <5% per-warp deviation, stable top-4) ===")
		dyn := experiments.CodeDynamics(r)
		report["code_dynamics"] = dyn
		for _, row := range dyn {
			fmt.Printf("  %-10s deviation=%.3f   top4 stable=%v\n", row.Benchmark, row.MeanRelDeviation, row.Top4SetStable)
		}
		fmt.Println()
	}

	if sel("fig10") {
		res := experiments.Figure10(r)
		report["figure10"] = res
		fmt.Println("=== Figure 10: partitioned RF access distribution (paper: 62% FRF, 22% of FRF in low mode) ===")
		for _, row := range res.Rows {
			fmt.Printf("  %-10s FRF_high=%.2f  FRF_low=%.2f  SRF=%.2f   (low share of FRF: %.2f)\n",
				row.Benchmark, row.FRFHigh, row.FRFLow, row.SRF, row.LowShareOfFRF)
		}
		fmt.Printf("  AVERAGE    FRF=%.2f   low-mode share of FRF=%.2f\n\n", res.AvgFRF, res.AvgLowShareOfFRF)
	}

	if sel("fig11") {
		res := experiments.Figure11(r)
		report["figure11"] = res
		fmt.Println("=== Figure 11: dynamic energy normalized to MRF@STV (paper: 54% saving; NTV 47%) ===")
		for _, row := range res.Rows {
			fmt.Printf("  %-10s partitioned=%.2f  +adaptive=%.2f  MRF@NTV=%.2f\n",
				row.Benchmark, row.PartitionedOnly, row.PartitionedAdaptive, row.MonolithicNTV)
		}
		fmt.Printf("  AVG SAVINGS  partitioned=%.0f%%  +adaptive=%.0f%%  MRF@NTV=%.0f%%\n\n",
			res.AvgSavingsPartOnly*100, res.AvgSavingsAdaptive*100, res.AvgSavingsNTV*100)
	}

	if sel("leakage") {
		l := experiments.Leakage()
		report["leakage"] = l
		fmt.Println("=== Leakage (Section V-B; paper: FRF 21.5%, SRF 39.7%, savings 39%) ===")
		fmt.Printf("  MRF=%.1f mW   FRF=%.2f mW (%.1f%%)   SRF=%.1f mW (%.1f%%)   savings=%.1f%%\n\n",
			l.MRFLeakageMW, l.FRFLeakageMW, l.FRFShareOfMRF*100, l.SRFLeakageMW, l.SRFShareOfMRF*100, l.SavingsPct)
	}

	if sel("fig12") {
		res := experiments.Figure12(r)
		report["figure12"] = res
		fmt.Println("=== Figure 12: normalized execution time (paper: <2% proposed, 7.1% NTV) ===")
		for _, row := range res.Rows {
			fmt.Printf("  %-10s hybrid/GTO=%.3f  compiler/GTO=%.3f  NTV/GTO=%.3f  hybrid/TL=%.3f  hybrid/LRR=%.3f\n",
				row.Benchmark, row.PartitionedHybridGTO, row.PartitionedCompilerGTO,
				row.MonolithicNTVGTO, row.PartitionedHybridTL, row.PartitionedHybridLRR)
		}
		fmt.Printf("  GEOMEAN    hybrid/GTO=%.3f  compiler/GTO=%.3f  NTV/GTO=%.3f  hybrid/TL=%.3f  hybrid/LRR=%.3f\n\n",
			res.GeoHybridGTO, res.GeoCompilerGTO, res.GeoNTVGTO, res.GeoHybridTL, res.GeoHybridLRR)
	}

	if sel("sens") {
		fmt.Println("=== Sensitivity studies (Section V-B/V-C) ===")
		srf := experiments.SRFLatencySensitivity(r)
		report["srf_latency"] = srf
		for _, p := range srf {
			fmt.Printf("  SRF %d cycles: slowdown %.3fx\n", p.SRFCycles, p.GeoSlowdown)
		}
		epochs := experiments.EpochSensitivity(r)
		report["epoch_sensitivity"] = epochs
		for _, p := range epochs {
			fmt.Printf("  epoch %3d cycles (20%% threshold): slowdown %.3fx  low-mode share %.2f\n",
				p.EpochCycles, p.GeoSlowdown, p.AvgLowShare)
		}
		ths := experiments.ThresholdSweep(r)
		report["threshold_sweep"] = ths
		for _, p := range ths {
			fmt.Printf("  threshold %3d/400: slowdown %.3fx  low-mode share %.2f\n",
				p.Threshold, p.GeoSlowdown, p.AvgLowShare)
		}
		fmt.Println()
	}

	if sel("rfc") {
		fmt.Println("=== RFC port/bank scaling (Section V-D; paper: 0.37x at R2W1, 3x at R8W4, ~1x banked) ===")
		ports := experiments.RFCPortScaling()
		report["rfc_ports"] = ports
		for _, row := range ports {
			fmt.Printf("  (R%d,W%d): %.2fx MRF access energy\n", row.ReadPorts, row.WritePorts, row.RelativeToMRF)
		}
		fmt.Printf("  8-banked crossbar RFC: %.2fx MRF\n\n", experiments.BankedRFCEnergyRelative())
	}

	if sel("fig13") {
		fmt.Println("=== Figure 13: RFC vs partitioned RF scaling ===")
		fmt.Printf("  %-14s rfcKB  rfcE   partE  rfcSlow  partSlow  hit\n", "config")
		f13 := experiments.Figure13(r)
		report["figure13"] = f13
		for _, row := range f13 {
			fmt.Printf("  %-14s %4.0f   %.2f   %.2f   %.3f    %.3f     %.2f\n",
				row.Config.Label(), row.RFCSizeKB, row.RFCEnergy, row.PartitionedEnergy,
				row.RFCSlowdown, row.PartitionedSlowdown, row.RFCHitRate)
		}
		fmt.Println()
	}

	if sel("voltage") {
		fmt.Println("=== Extension: RF energy/latency vs supply voltage (why NTV = 0.3 V) ===")
		vs := experiments.VoltageSweep()
		report["voltage_sweep"] = vs
		for _, p := range vs {
			fmt.Printf("  Vdd=%.3f V  access=%5.2f pJ  leakage=%5.1f mW  cycles=%d  delay=%.2fx\n",
				p.Vdd, p.AccessEnergyPJ, p.LeakageMW, p.AccessCycles, p.DelayRatio)
		}
		fmt.Println()
	}

	if sel("energy") {
		fmt.Println("=== Energy ledger: per-partition attribution + swap audit (conservation-checked) ===")
		rows := experiments.EnergyReport(r)
		report["energy_report"] = rows
		fmt.Print(experiments.EnergyReportText(rows))
		fmt.Println()
	}

	if sel("scorecard") {
		fmt.Println("=== Reproduction scorecard ===")
		rows := experiments.Scorecard(r)
		report["scorecard"] = rows
		fmt.Print(experiments.ScorecardText(rows))
		fmt.Println()
	}

	if sel("dse") {
		fmt.Println("=== Design-space exploration: scheme x knob grid, energy-vs-IPC Pareto frontier ===")
		rep, err := dse.Sweep(context.Background(), dse.Options{
			Schemes: designList,
			Scale:   *scale,
			SMs:     *sms,
			Workers: r.Workers,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		report["dse"] = rep
		if err := dse.WriteTable(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		fmt.Printf("  %d of %d points on the Pareto frontier (baseline %s)\n\n",
			len(dse.Frontier(rep.Points)), len(rep.Points), rep.Baseline)
	}

	if sel("ablation") {
		fmt.Println("=== Ablation: FRF size (paper design point: 4 registers/thread) ===")
		fmt.Printf("  %-8s %6s %10s %10s %10s\n", "FRFregs", "KB", "FRF share", "saving", "slowdown")
		frfs := experiments.FRFSizeSweep(r)
		report["frf_size_sweep"] = frfs
		for _, p := range frfs {
			fmt.Printf("  %-8d %6.0f %9.0f%% %9.1f%% %9.3fx\n",
				p.FRFRegs, p.FRFSizeKB, p.AvgFRFShare*100, p.AvgSavings*100, p.GeoSlowdown)
		}
		fmt.Println()
		fmt.Println("=== Ablation: profiling technique, end to end ===")
		fmt.Printf("  %-16s %10s %10s %10s\n", "technique", "FRF share", "saving", "slowdown")
		abl := experiments.ProfilingTechniqueAblation(r)
		report["profiling_ablation"] = abl
		for _, row := range abl {
			fmt.Printf("  %-16s %9.0f%% %9.1f%% %9.3fx\n",
				row.Technique, row.AvgFRFShare*100, row.AvgSavings*100, row.GeoSlowdown)
		}
		fmt.Println()
		fmt.Println("=== Ablation: pipeline latency model (writeback forwarding) ===")
		fwd := experiments.ForwardingAblation(r)
		report["forwarding_ablation"] = fwd
		for _, p := range fwd {
			fmt.Printf("  forwarding=%-5v hybrid=%.3fx  NTV=%.3fx\n", p.Forwarding, p.GeoHybrid, p.GeoNTV)
		}
		fmt.Println()
		fmt.Println("=== Extension: power-gating unallocated registers (beyond the paper) ===")
		gating := experiments.RegisterGatingExtension(r)
		report["register_gating"] = gating
		for _, row := range gating {
			fmt.Printf("  %-10s occupancy=%.2f  partitioned=%.1f mW (%.0f%%)  +gating=%.1f mW (%.0f%%)\n",
				row.Benchmark, row.Occupancy, row.PartitionedMW, row.SavingsPct, row.GatedMW, row.GatedSavings)
		}
		fmt.Println()
	}

	code := writeReport()
	if stopped {
		fmt.Fprintln(os.Stderr, "interrupted: sweep stopped early, partial report flushed")
		if code == 0 {
			code = 3
		}
	}
	return code
}
