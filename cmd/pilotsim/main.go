// Command pilotsim runs one benchmark (or all of them) on a chosen
// register file design and prints the statistics the paper's evaluation
// is built from: cycles, register access distribution, FRF share, pilot
// fraction, and profiling quality.
//
// Usage:
//
//	pilotsim [-bench name] [-design <scheme>] (any registered design
//	         scheme: mrf-stv, mrf-ntv, part, part-adaptive, greener,
//	         rfc, rfc-hints — see internal/design)
//	         [-profile static|compiler|pilot|hybrid] [-sched gto|lrr|tl]
//	         [-sms n] [-scale f] [-v]
//	         [-trace-out f.json] [-events-out f.ndjson] [-metrics-out f.csv]
//	         [-energy-out f.csv] [-heatmap-out f.csv|f.json] [-audit-out f.csv|f.json]
//	         [-record-out f.ndjson] [-record-every k] [-replay-check f.ndjson]
//	         [-stalls] [-http :6060] [-parallel n] [-perf-out f.json]
//	         [-fault-rate f] [-fault-seed n] [-protect none|parity|secded|paper]
//
// -parallel n runs the benchmarks concurrently on an n-worker
// work-stealing pool (internal/jobs), merging the summary rows in
// canonical order so the output is byte-identical to -parallel 1. It is
// a usage error combined with the shared-observer outputs below, which
// tee one stream across the whole benchmark loop.
//
// Observability: -trace-out writes a Chrome/Perfetto trace_event JSON
// file (open in ui.perfetto.dev), -events-out streams raw events as
// NDJSON, -metrics-out dumps the per-epoch metric time series as CSV,
// -stalls prints a stall-cycle attribution table per benchmark, and
// -http serves expvar/pprof plus a /metrics page while runs execute.
// -perf-out profiles the simulator itself: per-benchmark wall-clock
// phase timings plus the deterministic skip-headroom census, written as
// a pilotrf-perfscope/v1 JSON report (see internal/perfscope and
// cmd/perfscope for the census-only reproducible sweep).
//
// Energy attribution: -energy-out attaches the energy ledger and writes
// the per-SM per-epoch charge stream as CSV; -heatmap-out writes the
// per-register access/energy heatmap (CSV, or JSON when the path ends
// in .json); -audit-out writes the FRF swap-decision audit log (CSV or
// .json). All three are conservation-checked against the aggregate
// energy model before writing.
//
// Flight recorder: -record-out captures the run's architectural
// commitments (issue decisions, warp lifecycle, RF routing, swap
// installs, mode flips, periodic state checksums every -record-every
// cycles) as a pilotrf-flightrec/v1 NDJSON log; -replay-check re-runs
// the configuration against a prior recording and fails on the first
// mismatching event. Diff two recordings with cmd/rfdiff.
//
// Resilience: -fault-rate enables the seeded soft-error injector (see
// internal/fault) and prints per-benchmark fault outcome counters;
// -protect selects the ECC/parity scheme whose check-bit energy the
// ledger prices. A fault that exhausts its warp-level retries aborts the
// benchmark with a structured error. cmd/faultcampaign runs full
// classification campaigns on top of the same machinery.
//
// Every output path is created up front, before any simulation runs, so
// a bad path fails fast without leaving sibling files partially written.
// SIGINT/SIGTERM stop cleanly at the next benchmark boundary: completed
// rows stay printed, every output file flushes, and the process exits
// with code 3.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"pilotrf/internal/design"
	"pilotrf/internal/energy"
	"pilotrf/internal/fault"
	"pilotrf/internal/flightrec"
	"pilotrf/internal/jobs"
	"pilotrf/internal/perfscope"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/workloads"
)

// outFiles holds every requested output file, created eagerly before
// the run so path errors surface before any simulation — and before any
// sibling exporter has written a partial file. A creation failure
// removes the files already created.
type outFiles struct {
	files map[string]*os.File
	order []string
}

// openOutputs creates the non-empty paths. On any failure the files
// created so far are closed and removed.
func openOutputs(paths ...string) (*outFiles, error) {
	o := &outFiles{files: map[string]*os.File{}}
	for _, p := range paths {
		if p == "" {
			continue
		}
		if _, dup := o.files[p]; dup {
			o.removeAll()
			return nil, fmt.Errorf("output path %s used by two flags", p)
		}
		f, err := os.Create(p)
		if err != nil {
			o.removeAll()
			return nil, err
		}
		o.files[p] = f
		o.order = append(o.order, p)
	}
	return o, nil
}

// get returns the pre-created file for path ("" and unknown paths are nil).
func (o *outFiles) get(path string) *os.File { return o.files[path] }

// write streams into the pre-created file for path.
func (o *outFiles) write(path string, write func(io.Writer) error) error {
	if err := write(o.files[path]); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return nil
}

// closeAll closes every file, reporting the first error.
func (o *outFiles) closeAll() error {
	var first error
	for _, p := range o.order {
		if err := o.files[p].Close(); err != nil && first == nil {
			first = fmt.Errorf("closing %s: %w", p, err)
		}
	}
	return first
}

// removeAll closes and deletes every created file (the bad-path and
// bad-flag cleanup path).
func (o *outFiles) removeAll() {
	for _, p := range o.order {
		o.files[p].Close()
		os.Remove(p)
	}
}

// countingTracer prints the first N pipeline events.
type countingTracer struct {
	w     io.Writer
	limit int
	seen  int
}

// Event implements sim.Tracer.
func (t *countingTracer) Event(e sim.TraceEvent) {
	if t.seen < t.limit {
		fmt.Fprintln(t.w, e.String())
		t.seen++
	}
}

// usageError marks a bad flag value, exiting 2 rather than the runtime
// failures' 1.
type usageError struct{ error }

// printResult renders one benchmark's results: the summary row plus the
// optional fault, per-kernel, and stall sections. Both the sequential
// loop and the -parallel path render through it, so the merged parallel
// output is byte-identical to a sequential run.
func printResult(wr io.Writer, cfg sim.Config, scheme fault.Scheme, w workloads.Workload, rs sim.RunStats, verbose, stalls bool) {
	// Compiler-vs-oracle top-4 capture gap (Figure 4's category axis).
	var cgap, totalW float64
	for ki, k := range w.Kernels {
		h := rs.Kernels[ki].RegHist
		top := profile.CompilerTopN(k.Prog, 4)
		keys := make([]int, len(top))
		for i, r := range top {
			keys[i] = int(r)
		}
		wgt := float64(h.Total())
		cgap += (h.TopNShare(4) - h.Share(keys)) * wgt
		totalW += wgt
	}
	if totalW > 0 {
		cgap /= totalW
	}
	pilotFrac := 0.0
	if len(rs.Kernels) > 0 {
		pilotFrac = rs.Kernels[0].PilotFraction
	}
	var lowShare float64
	parts := rs.PartAccesses()
	if frf := parts[regfile.PartFRFHigh] + parts[regfile.PartFRFLow]; frf > 0 {
		lowShare = float64(parts[regfile.PartFRFLow]) / float64(frf)
	}
	fmt.Fprintf(wr, "%-10s %9d %8d %6.2f %6.2f %6.2f %7.2f %7.2f %7.2f %7.2f\n",
		w.Name, rs.TotalCycles(), rs.TotalAccesses(),
		rs.TopNShareByKernel(3), rs.TopNShareByKernel(4), rs.TopNShareByKernel(5),
		rs.FRFShare()*100, lowShare*100, pilotFrac*100, cgap)
	if cfg.Fault != nil {
		ft := rs.FaultTotals()
		fmt.Fprintf(wr, "    faults[%s]: injected=%d corrected=%d retried=%d silent=%d cam-corrupt=%d\n",
			scheme, ft.TotalInjected(), ft.Corrected, ft.DetectedRetry, ft.SilentReads, ft.CAMCorrupted)
	}
	if verbose {
		for _, ks := range rs.Kernels {
			fmt.Fprintf(wr, "    %-28s cycles=%-8d instrs=%-8d util=%.2f FRF=%.2f pilot=%.2f simt=%.2f colstall=%d bankq=%.2f\n",
				ks.Name, ks.Cycles, ks.WarpInstrs, ks.IssueUtilization(), ks.FRFShare(), ks.PilotFraction,
				ks.SIMTEfficiency(), ks.CollectorStalls, ks.AvgBankQueue(cfg.RF.Banks))
		}
	}
	if stalls {
		bd, busy, smCycles := rs.StallTotals()
		fmt.Fprintf(wr, "\n%s stall attribution (SM-cycles=%d busy=%d stalled=%d):\n%s\n",
			w.Name, smCycles, busy, smCycles-busy, bd.Table())
	}
}

// errInterrupted reports a SIGINT/SIGTERM shutdown: the benchmarks that
// completed were printed and every requested output file was flushed.
// It maps to exit code 3 so callers can tell a clean partial run from a
// failure.
var errInterrupted = errors.New("interrupted: remaining benchmarks skipped, outputs flushed")

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		if errors.Is(err, errInterrupted) {
			os.Exit(3)
		}
		if _, ok := err.(usageError); ok {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pilotsim", flag.ContinueOnError)
	var (
		benchName   = fs.String("bench", "", "benchmark name (empty = all)")
		designName  = fs.String("design", "part-adaptive", strings.Join(design.Names(), " | "))
		prof        = fs.String("profile", "hybrid", "static | compiler | pilot | hybrid")
		sched       = fs.String("sched", "gto", "gto | lrr | tl | fg")
		sms         = fs.Int("sms", 2, "number of SMs")
		scale       = fs.Float64("scale", 1, "CTA count scale factor")
		seed        = fs.Uint64("seed", 0, "memory-content seed (0 = default)")
		verbose     = fs.Bool("v", false, "per-kernel detail")
		traceN      = fs.Int("trace", 0, "print the first N pipeline trace events")
		traceOut    = fs.String("trace-out", "", "write a Perfetto trace_event JSON file")
		eventsOut   = fs.String("events-out", "", "write pipeline events as NDJSON")
		metricsCSV  = fs.String("metrics-out", "", "write the per-epoch metric time series as CSV")
		energyOut   = fs.String("energy-out", "", "attach the energy ledger and write per-epoch charges as CSV")
		heatmapOut  = fs.String("heatmap-out", "", "write the per-register access/energy heatmap (CSV, or JSON for .json paths)")
		auditOut    = fs.String("audit-out", "", "write the FRF swap-decision audit log (CSV, or JSON for .json paths)")
		recordOut   = fs.String("record-out", "", "write the flight-recorder event log as NDJSON")
		recordEvery = fs.Int64("record-every", flightrec.DefaultChecksumEvery, "cycles between recorded state checksums")
		replayCheck = fs.String("replay-check", "", "verify this run against a prior -record-out log")
		stalls      = fs.Bool("stalls", false, "attribute stall cycles and print the breakdown")
		httpAddr    = fs.String("http", "", "serve expvar/pprof/metrics on this address (e.g. :6060)")
		faultRate   = fs.Float64("fault-rate", 0, "inject soft errors at this rate (upsets/bit/cycle at STV; 0 = off)")
		faultSeed   = fs.Uint64("fault-seed", 1, "fault-injection seed")
		protect     = fs.String("protect", "none", "RF protection scheme: none | parity | secded | paper")
		parallel    = fs.Int("parallel", 1, "run benchmarks concurrently on N pool workers (same bytes as 1; incompatible with shared-observer outputs)")
		perfOut     = fs.String("perf-out", "", "write the simulator's wall-clock & skip-headroom profile as pilotrf-perfscope/v1 JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel <= 0 {
		return usageError{fmt.Errorf("parallel must be positive, got %d", *parallel)}
	}
	if *parallel > 1 {
		// The observability exporters tee one shared stream (or ledger,
		// or recorder) across the whole benchmark loop; running
		// benchmarks concurrently would interleave them. Summary rows
		// merge deterministically, observer streams do not.
		if *traceN > 0 || *traceOut != "" || *eventsOut != "" || *metricsCSV != "" ||
			*energyOut != "" || *heatmapOut != "" || *auditOut != "" ||
			*recordOut != "" || *replayCheck != "" || *httpAddr != "" || *perfOut != "" {
			return usageError{fmt.Errorf("-parallel %d is incompatible with shared-observer outputs (-trace, -trace-out, -events-out, -metrics-out, -energy-out, -heatmap-out, -audit-out, -record-out, -replay-check, -http, -perf-out); rerun with -parallel 1 (or use cmd/perfscope for parallel census sweeps)", *parallel)}
		}
	}

	cfg := sim.DefaultConfig()
	cfg.NumSMs = *sms
	if *seed != 0 {
		cfg.Seed = *seed
	}
	sch, ok := design.Lookup(*designName)
	if !ok {
		return usageError{fmt.Errorf("unknown design %q (valid: %s)", *designName, strings.Join(design.SortedNames(), ", "))}
	}
	switch *prof {
	case "static":
		cfg.Profiling = profile.TechniqueStaticFirstN
	case "compiler":
		cfg.Profiling = profile.TechniqueCompiler
	case "pilot":
		cfg.Profiling = profile.TechniquePilot
	case "hybrid":
		cfg.Profiling = profile.TechniqueHybrid
	default:
		return usageError{fmt.Errorf("unknown profile %q", *prof)}
	}
	switch *sched {
	case "gto":
		cfg.Policy = sim.PolicyGTO
	case "lrr":
		cfg.Policy = sim.PolicyLRR
	case "tl":
		cfg.Policy = sim.PolicyTL
	case "fg":
		cfg.Policy = sim.PolicyFetchGroup
	default:
		return usageError{fmt.Errorf("unknown scheduler %q", *sched)}
	}
	// The scheme applies after -sched so a scheme that mandates its own
	// scheduler (the RFC schemes run two-level, per the paper) wins over
	// the flag's default; the four legacy designs leave -sched alone.
	cfg, err := cfg.WithScheme(sch, sch.DefaultKnobs())
	if err != nil {
		return err
	}
	if *recordOut != "" && *replayCheck != "" {
		return usageError{fmt.Errorf("-record-out and -replay-check are mutually exclusive (replay verifies, it does not re-record)")}
	}
	scheme, err := fault.ParseScheme(*protect)
	if err != nil {
		return usageError{err}
	}
	cfg.Protect = scheme
	if *faultRate != 0 {
		cfg.Fault = &fault.Config{Rate: *faultRate, Seed: *faultSeed}
		if err := cfg.Fault.Validate(); err != nil {
			return usageError{err}
		}
	}

	var wls []workloads.Workload
	if *benchName == "" {
		wls = workloads.All()
	} else {
		w, err := workloads.ByName(*benchName)
		if err != nil {
			return err
		}
		wls = []workloads.Workload{w}
	}

	// The replay log loads before any output file is created: a missing
	// or malformed recording must not truncate fresh outputs.
	var checker *flightrec.Checker
	if *replayCheck != "" {
		log, err := flightrec.ReadFile(*replayCheck)
		if err != nil {
			return err
		}
		checker = flightrec.NewChecker(log)
		cfg.Record = checker
	}

	out, err := openOutputs(*traceOut, *eventsOut, *metricsCSV, *energyOut, *heatmapOut, *auditOut, *recordOut, *perfOut)
	if err != nil {
		return err
	}

	// Assemble the tracer chain: console preview, Perfetto export, and
	// NDJSON export can all observe the same run through one tee.
	var tracers []sim.Tracer
	if *traceN > 0 {
		tracers = append(tracers, &countingTracer{w: stdout, limit: *traceN})
	}
	if *traceOut != "" {
		tracers = append(tracers, sim.NewPerfettoTracer(out.get(*traceOut)))
	}
	if *eventsOut != "" {
		tracers = append(tracers, sim.NewNDJSONTracer(out.get(*eventsOut)))
	}
	switch len(tracers) {
	case 0:
	case 1:
		cfg.Tracer = tracers[0]
	default:
		cfg.Tracer = sim.NewTeeTracer(tracers...)
	}

	var led *energy.Ledger
	if *energyOut != "" || *heatmapOut != "" {
		led = energy.NewLedger(cfg.RF.Design, 0)
		cfg.Energy = led
	}
	var audit *profile.AuditLog
	if *auditOut != "" {
		audit = &profile.AuditLog{}
		cfg.Audit = audit
	}
	var flight *flightrec.Recorder
	if *recordOut != "" {
		flight = sim.NewFlightRecorder(&cfg, *benchName, *recordEvery)
		cfg.Record = flight
	}

	cfg.Stalls = *stalls
	var rec *telemetry.Recorder
	if *metricsCSV != "" || *httpAddr != "" {
		rec = sim.NewMetricsRecorder(0)
		cfg.Metrics = rec
	}
	if *httpAddr != "" {
		srv, err := telemetry.StartLive(*httpAddr, rec.Registry())
		if err != nil {
			out.removeAll()
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving expvar/pprof/metrics on %s\n", srv.Addr)
	}

	var ledgerParts [4]uint64
	var ledgerCycles int64

	// Benchmarks stop cleanly at the next boundary on SIGINT/SIGTERM:
	// the loop breaks, every requested output flushes, and the process
	// exits 3 instead of dying mid-write.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	interrupted := false

	fmt.Fprintf(stdout, "%-10s %9s %8s %6s %6s %6s %7s %7s %7s %7s\n",
		"bench", "cycles", "accesses", "top3", "top4", "top5", "FRF%", "low%", "pilot%", "cgap")
	if *parallel > 1 {
		// Each benchmark runs as an independent pool task rendering into
		// its own buffer; the buffers print in submission order, so the
		// output is byte-identical to a sequential run. SIGINT/SIGTERM
		// cancels the batch: running benchmarks finish, pending ones are
		// skipped, and the completed prefix still prints.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go func() {
			select {
			case <-sigc:
				cancel()
			case <-ctx.Done():
			}
		}()
		pool, err := jobs.New(jobs.Config{Workers: *parallel})
		if err != nil {
			return err
		}
		defer pool.Close()
		tasks := make([]jobs.Task, len(wls))
		for i, w := range wls {
			w := w.Scale(*scale)
			tasks[i] = func(context.Context) (interface{}, error) {
				g, err := sim.New(cfg)
				if err != nil {
					return nil, err
				}
				rs, err := g.RunKernels(w.Name, w.Kernels)
				if err != nil {
					return nil, fmt.Errorf("%s: %w", w.Name, err)
				}
				var buf strings.Builder
				printResult(&buf, cfg, scheme, w, rs, *verbose, *stalls)
				return buf.String(), nil
			}
		}
		batch, err := pool.Submit(ctx, tasks)
		if err != nil {
			if errors.Is(err, context.Canceled) {
				return errInterrupted
			}
			return err
		}
		// Wait on the background context: after a cancellation the
		// pending tasks finish instantly with the context error, and
		// the completed prefix below still prints.
		results, _ := batch.Wait(context.Background())
		for _, r := range results {
			if errors.Is(r.Err, context.Canceled) {
				interrupted = true
				break
			}
			if r.Err != nil {
				return r.Err
			}
			io.WriteString(stdout, r.Value.(string))
		}
	} else {
		var perfEntries []perfscope.Entry
		for _, w := range wls {
			select {
			case <-sigc:
				interrupted = true
			default:
			}
			if interrupted {
				break
			}
			w = w.Scale(*scale)
			if *perfOut != "" {
				// One profiler per benchmark so the report attributes
				// wall time and skip headroom per workload row.
				cfg.Perf = perfscope.New(true)
			}
			g, err := sim.New(cfg)
			if err != nil {
				return err
			}
			rs, err := g.RunKernels(w.Name, w.Kernels)
			if err != nil {
				return fmt.Errorf("%s: %w", w.Name, err)
			}
			if cfg.Perf != nil {
				perfEntries = append(perfEntries, perfscope.NewEntry(w.Name, *designName, cfg.Perf))
			}
			if led != nil {
				for p, n := range rs.PartAccesses() {
					ledgerParts[p] += n
				}
				ledgerCycles += rs.TotalCycles()
			}
			printResult(stdout, cfg, scheme, w, rs, *verbose, *stalls)
		}
		if *perfOut != "" {
			if err := out.write(*perfOut, perfscope.NewReport(perfEntries).WriteJSON); err != nil {
				return err
			}
		}
	}

	if err := sim.FlushTracer(cfg.Tracer); err != nil {
		return fmt.Errorf("flushing trace: %w", err)
	}
	if *metricsCSV != "" {
		if err := out.write(*metricsCSV, rec.WriteCSV); err != nil {
			return err
		}
	}
	if led != nil {
		if err := led.CheckConservation(ledgerParts, ledgerCycles); err != nil {
			return fmt.Errorf("energy ledger conservation violated: %w", err)
		}
		if *energyOut != "" {
			if err := out.write(*energyOut, led.WriteEpochCSV); err != nil {
				return err
			}
		}
		if *heatmapOut != "" {
			w := led.WriteHeatmapCSV
			if strings.HasSuffix(*heatmapOut, ".json") {
				w = led.WriteHeatmapJSON
			}
			if err := out.write(*heatmapOut, w); err != nil {
				return err
			}
		}
	}
	if audit != nil {
		w := audit.WriteCSV
		if strings.HasSuffix(*auditOut, ".json") {
			w = audit.WriteJSON
		}
		if err := out.write(*auditOut, w); err != nil {
			return err
		}
	}
	if flight != nil {
		if err := out.write(*recordOut, flight.Log().WriteNDJSON); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "recorded %d flight-recorder events to %s\n", flight.Len(), *recordOut)
	}
	if err := out.closeAll(); err != nil {
		return err
	}
	if checker != nil {
		if err := checker.Err(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "replay-check: %d events match %s\n", checker.Checked(), *replayCheck)
	}
	if interrupted {
		return errInterrupted
	}
	return nil
}
