// Command pilotsim runs one benchmark (or all of them) on a chosen
// register file design and prints the statistics the paper's evaluation
// is built from: cycles, register access distribution, FRF share, pilot
// fraction, and profiling quality.
//
// Usage:
//
//	pilotsim [-bench name] [-design mrf-stv|mrf-ntv|part|part-adaptive]
//	         [-profile static|compiler|pilot|hybrid] [-sched gto|lrr|tl]
//	         [-sms n] [-scale f] [-v]
//	         [-trace-out f.json] [-events-out f.ndjson] [-metrics-out f.csv]
//	         [-energy-out f.csv] [-heatmap-out f.csv|f.json] [-audit-out f.csv|f.json]
//	         [-stalls] [-http :6060]
//
// Observability: -trace-out writes a Chrome/Perfetto trace_event JSON
// file (open in ui.perfetto.dev), -events-out streams raw events as
// NDJSON, -metrics-out dumps the per-epoch metric time series as CSV,
// -stalls prints a stall-cycle attribution table per benchmark, and
// -http serves expvar/pprof plus a /metrics page while runs execute.
//
// Energy attribution: -energy-out attaches the energy ledger and writes
// the per-SM per-epoch charge stream as CSV; -heatmap-out writes the
// per-register access/energy heatmap (CSV, or JSON when the path ends
// in .json); -audit-out writes the FRF swap-decision audit log (CSV or
// .json). All three are conservation-checked against the aggregate
// energy model before writing.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pilotrf/internal/energy"
	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/telemetry"
	"pilotrf/internal/workloads"
)

// writeFile creates path and streams write into it, exiting on error.
func writeFile(path string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := write(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s: %v\n", path, err)
		os.Exit(1)
	}
}

// countingTracer prints the first N pipeline events to stdout.
type countingTracer struct {
	limit int
	seen  int
}

// Event implements sim.Tracer.
func (t *countingTracer) Event(e sim.TraceEvent) {
	if t.seen < t.limit {
		fmt.Println(e.String())
		t.seen++
	}
}

func main() {
	var (
		benchName  = flag.String("bench", "", "benchmark name (empty = all)")
		design     = flag.String("design", "part-adaptive", "mrf-stv | mrf-ntv | part | part-adaptive")
		prof       = flag.String("profile", "hybrid", "static | compiler | pilot | hybrid")
		sched      = flag.String("sched", "gto", "gto | lrr | tl | fg")
		sms        = flag.Int("sms", 2, "number of SMs")
		scale      = flag.Float64("scale", 1, "CTA count scale factor")
		verbose    = flag.Bool("v", false, "per-kernel detail")
		traceN     = flag.Int("trace", 0, "print the first N pipeline trace events")
		traceOut   = flag.String("trace-out", "", "write a Perfetto trace_event JSON file")
		eventsOut  = flag.String("events-out", "", "write pipeline events as NDJSON")
		metricsCSV = flag.String("metrics-out", "", "write the per-epoch metric time series as CSV")
		energyOut  = flag.String("energy-out", "", "attach the energy ledger and write per-epoch charges as CSV")
		heatmapOut = flag.String("heatmap-out", "", "write the per-register access/energy heatmap (CSV, or JSON for .json paths)")
		auditOut   = flag.String("audit-out", "", "write the FRF swap-decision audit log (CSV, or JSON for .json paths)")
		stalls     = flag.Bool("stalls", false, "attribute stall cycles and print the breakdown")
		httpAddr   = flag.String("http", "", "serve expvar/pprof/metrics on this address (e.g. :6060)")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.NumSMs = *sms
	switch *design {
	case "mrf-stv":
		cfg = cfg.WithDesign(regfile.DesignMonolithicSTV)
	case "mrf-ntv":
		cfg = cfg.WithDesign(regfile.DesignMonolithicNTV)
	case "part":
		cfg = cfg.WithDesign(regfile.DesignPartitioned)
	case "part-adaptive":
		cfg = cfg.WithDesign(regfile.DesignPartitionedAdaptive)
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	switch *prof {
	case "static":
		cfg.Profiling = profile.TechniqueStaticFirstN
	case "compiler":
		cfg.Profiling = profile.TechniqueCompiler
	case "pilot":
		cfg.Profiling = profile.TechniquePilot
	case "hybrid":
		cfg.Profiling = profile.TechniqueHybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *prof)
		os.Exit(2)
	}
	switch *sched {
	case "gto":
		cfg.Policy = sim.PolicyGTO
	case "lrr":
		cfg.Policy = sim.PolicyLRR
	case "tl":
		cfg.Policy = sim.PolicyTL
	case "fg":
		cfg.Policy = sim.PolicyFetchGroup
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(2)
	}

	var wls []workloads.Workload
	if *benchName == "" {
		wls = workloads.All()
	} else {
		w, err := workloads.ByName(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wls = []workloads.Workload{w}
	}

	// Assemble the tracer chain: console preview, Perfetto export, and
	// NDJSON export can all observe the same run through one tee.
	var tracers []sim.Tracer
	if *traceN > 0 {
		tracers = append(tracers, &countingTracer{limit: *traceN})
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tracers = append(tracers, sim.NewPerfettoTracer(f))
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		tracers = append(tracers, sim.NewNDJSONTracer(f))
	}
	switch len(tracers) {
	case 0:
	case 1:
		cfg.Tracer = tracers[0]
	default:
		cfg.Tracer = sim.NewTeeTracer(tracers...)
	}

	var led *energy.Ledger
	if *energyOut != "" || *heatmapOut != "" {
		led = energy.NewLedger(cfg.RF.Design, 0)
		cfg.Energy = led
	}
	var audit *profile.AuditLog
	if *auditOut != "" {
		audit = &profile.AuditLog{}
		cfg.Audit = audit
	}

	cfg.Stalls = *stalls
	var rec *telemetry.Recorder
	if *metricsCSV != "" || *httpAddr != "" {
		rec = sim.NewMetricsRecorder(0)
		cfg.Metrics = rec
	}
	if *httpAddr != "" {
		srv, err := telemetry.StartLive(*httpAddr, rec.Registry())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving expvar/pprof/metrics on %s\n", srv.Addr)
	}

	var ledgerParts [4]uint64
	var ledgerCycles int64

	fmt.Printf("%-10s %9s %8s %6s %6s %6s %7s %7s %7s %7s\n",
		"bench", "cycles", "accesses", "top3", "top4", "top5", "FRF%", "low%", "pilot%", "cgap")
	for _, w := range wls {
		w = w.Scale(*scale)
		g, err := sim.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rs, err := g.RunKernels(w.Name, w.Kernels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", w.Name, err)
			os.Exit(1)
		}
		if led != nil {
			for p, n := range rs.PartAccesses() {
				ledgerParts[p] += n
			}
			ledgerCycles += rs.TotalCycles()
		}
		// Compiler-vs-oracle top-4 capture gap (Figure 4's category axis).
		var cgap, totalW float64
		for ki, k := range w.Kernels {
			h := rs.Kernels[ki].RegHist
			top := profile.CompilerTopN(k.Prog, 4)
			keys := make([]int, len(top))
			for i, r := range top {
				keys[i] = int(r)
			}
			wgt := float64(h.Total())
			cgap += (h.TopNShare(4) - h.Share(keys)) * wgt
			totalW += wgt
		}
		if totalW > 0 {
			cgap /= totalW
		}
		pilotFrac := 0.0
		if len(rs.Kernels) > 0 {
			pilotFrac = rs.Kernels[0].PilotFraction
		}
		var lowShare float64
		parts := rs.PartAccesses()
		if frf := parts[regfile.PartFRFHigh] + parts[regfile.PartFRFLow]; frf > 0 {
			lowShare = float64(parts[regfile.PartFRFLow]) / float64(frf)
		}
		fmt.Printf("%-10s %9d %8d %6.2f %6.2f %6.2f %7.2f %7.2f %7.2f %7.2f\n",
			w.Name, rs.TotalCycles(), rs.TotalAccesses(),
			rs.TopNShareByKernel(3), rs.TopNShareByKernel(4), rs.TopNShareByKernel(5),
			rs.FRFShare()*100, lowShare*100, pilotFrac*100, cgap)
		if *verbose {
			for _, ks := range rs.Kernels {
				fmt.Printf("    %-28s cycles=%-8d instrs=%-8d util=%.2f FRF=%.2f pilot=%.2f simt=%.2f colstall=%d bankq=%.2f\n",
					ks.Name, ks.Cycles, ks.WarpInstrs, ks.IssueUtilization(), ks.FRFShare(), ks.PilotFraction,
					ks.SIMTEfficiency(), ks.CollectorStalls, ks.AvgBankQueue(cfg.RF.Banks))
			}
		}
		if *stalls {
			bd, busy, smCycles := rs.StallTotals()
			fmt.Printf("\n%s stall attribution (SM-cycles=%d busy=%d stalled=%d):\n%s\n",
				w.Name, smCycles, busy, smCycles-busy, bd.Table())
		}
	}

	if err := sim.FlushTracer(cfg.Tracer); err != nil {
		fmt.Fprintf(os.Stderr, "flushing trace: %v\n", err)
		os.Exit(1)
	}
	if *metricsCSV != "" {
		f, err := os.Create(*metricsCSV)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := rec.WriteCSV(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing metrics: %v\n", err)
			os.Exit(1)
		}
	}
	if led != nil {
		if err := led.CheckConservation(ledgerParts, ledgerCycles); err != nil {
			fmt.Fprintf(os.Stderr, "energy ledger conservation violated: %v\n", err)
			os.Exit(1)
		}
		if *energyOut != "" {
			writeFile(*energyOut, led.WriteEpochCSV)
		}
		if *heatmapOut != "" {
			if strings.HasSuffix(*heatmapOut, ".json") {
				writeFile(*heatmapOut, led.WriteHeatmapJSON)
			} else {
				writeFile(*heatmapOut, led.WriteHeatmapCSV)
			}
		}
	}
	if audit != nil {
		if strings.HasSuffix(*auditOut, ".json") {
			writeFile(*auditOut, audit.WriteJSON)
		} else {
			writeFile(*auditOut, audit.WriteCSV)
		}
	}
}
