// Command pilotsim runs one benchmark (or all of them) on a chosen
// register file design and prints the statistics the paper's evaluation
// is built from: cycles, register access distribution, FRF share, pilot
// fraction, and profiling quality.
//
// Usage:
//
//	pilotsim [-bench name] [-design mrf-stv|mrf-ntv|part|part-adaptive]
//	         [-profile static|compiler|pilot|hybrid] [-sched gto|lrr|tl]
//	         [-sms n] [-scale f] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"pilotrf/internal/profile"
	"pilotrf/internal/regfile"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

// countingTracer prints the first N pipeline events to stdout.
type countingTracer struct {
	limit int
	seen  int
}

// Event implements sim.Tracer.
func (t *countingTracer) Event(e sim.TraceEvent) {
	if t.seen < t.limit {
		fmt.Println(e.String())
		t.seen++
	}
}

func main() {
	var (
		benchName = flag.String("bench", "", "benchmark name (empty = all)")
		design    = flag.String("design", "part-adaptive", "mrf-stv | mrf-ntv | part | part-adaptive")
		prof      = flag.String("profile", "hybrid", "static | compiler | pilot | hybrid")
		sched     = flag.String("sched", "gto", "gto | lrr | tl | fg")
		sms       = flag.Int("sms", 2, "number of SMs")
		scale     = flag.Float64("scale", 1, "CTA count scale factor")
		verbose   = flag.Bool("v", false, "per-kernel detail")
		traceN    = flag.Int("trace", 0, "print the first N pipeline trace events")
	)
	flag.Parse()

	cfg := sim.DefaultConfig()
	cfg.NumSMs = *sms
	switch *design {
	case "mrf-stv":
		cfg = cfg.WithDesign(regfile.DesignMonolithicSTV)
	case "mrf-ntv":
		cfg = cfg.WithDesign(regfile.DesignMonolithicNTV)
	case "part":
		cfg = cfg.WithDesign(regfile.DesignPartitioned)
	case "part-adaptive":
		cfg = cfg.WithDesign(regfile.DesignPartitionedAdaptive)
	default:
		fmt.Fprintf(os.Stderr, "unknown design %q\n", *design)
		os.Exit(2)
	}
	switch *prof {
	case "static":
		cfg.Profiling = profile.TechniqueStaticFirstN
	case "compiler":
		cfg.Profiling = profile.TechniqueCompiler
	case "pilot":
		cfg.Profiling = profile.TechniquePilot
	case "hybrid":
		cfg.Profiling = profile.TechniqueHybrid
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *prof)
		os.Exit(2)
	}
	switch *sched {
	case "gto":
		cfg.Policy = sim.PolicyGTO
	case "lrr":
		cfg.Policy = sim.PolicyLRR
	case "tl":
		cfg.Policy = sim.PolicyTL
	case "fg":
		cfg.Policy = sim.PolicyFetchGroup
	default:
		fmt.Fprintf(os.Stderr, "unknown scheduler %q\n", *sched)
		os.Exit(2)
	}

	var wls []workloads.Workload
	if *benchName == "" {
		wls = workloads.All()
	} else {
		w, err := workloads.ByName(*benchName)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		wls = []workloads.Workload{w}
	}

	var tracer *countingTracer
	if *traceN > 0 {
		tracer = &countingTracer{limit: *traceN}
		cfg.Tracer = tracer
	}

	fmt.Printf("%-10s %9s %8s %6s %6s %6s %7s %7s %7s %7s\n",
		"bench", "cycles", "accesses", "top3", "top4", "top5", "FRF%", "low%", "pilot%", "cgap")
	for _, w := range wls {
		w = w.Scale(*scale)
		g, err := sim.New(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rs, err := g.RunKernels(w.Name, w.Kernels)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", w.Name, err)
			os.Exit(1)
		}
		// Compiler-vs-oracle top-4 capture gap (Figure 4's category axis).
		var cgap, totalW float64
		for ki, k := range w.Kernels {
			h := rs.Kernels[ki].RegHist
			top := profile.CompilerTopN(k.Prog, 4)
			keys := make([]int, len(top))
			for i, r := range top {
				keys[i] = int(r)
			}
			wgt := float64(h.Total())
			cgap += (h.TopNShare(4) - h.Share(keys)) * wgt
			totalW += wgt
		}
		if totalW > 0 {
			cgap /= totalW
		}
		pilotFrac := 0.0
		if len(rs.Kernels) > 0 {
			pilotFrac = rs.Kernels[0].PilotFraction
		}
		var lowShare float64
		parts := rs.PartAccesses()
		if frf := parts[regfile.PartFRFHigh] + parts[regfile.PartFRFLow]; frf > 0 {
			lowShare = float64(parts[regfile.PartFRFLow]) / float64(frf)
		}
		fmt.Printf("%-10s %9d %8d %6.2f %6.2f %6.2f %7.2f %7.2f %7.2f %7.2f\n",
			w.Name, rs.TotalCycles(), rs.TotalAccesses(),
			rs.TopNShareByKernel(3), rs.TopNShareByKernel(4), rs.TopNShareByKernel(5),
			rs.FRFShare()*100, lowShare*100, pilotFrac*100, cgap)
		if *verbose {
			for _, ks := range rs.Kernels {
				fmt.Printf("    %-28s cycles=%-8d instrs=%-8d util=%.2f FRF=%.2f pilot=%.2f simt=%.2f colstall=%d bankq=%.2f\n",
					ks.Name, ks.Cycles, ks.WarpInstrs, ks.IssueUtilization(), ks.FRFShare(), ks.PilotFraction,
					ks.SIMTEfficiency(), ks.CollectorStalls, ks.AvgBankQueue(cfg.RF.Banks))
			}
		}
	}
}
