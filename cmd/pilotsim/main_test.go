package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pilotrf/internal/flightrec"
)

// TestCombinedExporters drives the combined -trace-out/-energy-out/
// -record-out path end to end on one small benchmark: all three files
// must exist and be non-empty, and the recording must parse.
func TestCombinedExporters(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	energy := filepath.Join(dir, "energy.csv")
	record := filepath.Join(dir, "run.ndjson")

	var out bytes.Buffer
	err := run([]string{
		"-bench", "sgemm", "-scale", "0.1", "-sms", "1",
		"-trace-out", trace, "-energy-out", energy,
		"-record-out", record, "-record-every", "32",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{trace, energy, record} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	log, err := flightrec.ReadFile(record)
	if err != nil {
		t.Fatalf("recording does not parse: %v", err)
	}
	if len(log.Events) == 0 || len(log.Checksums()) == 0 {
		t.Fatalf("recording has %d events, %d checksums", len(log.Events), len(log.Checksums()))
	}
	if !strings.Contains(out.String(), "sgemm") {
		t.Errorf("stdout missing benchmark row for sgemm:\n%s", out.String())
	}
}

// TestBadOutputPathLeavesNoPartialFiles: when one output path is
// invalid, no sibling output may be left behind (the pre-fix behaviour
// created earlier files before failing on the later one).
func TestBadOutputPathLeavesNoPartialFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	bad := filepath.Join(dir, "missing-subdir", "energy.csv")

	var out bytes.Buffer
	err := run([]string{
		"-bench", "sgemm", "-scale", "0.1", "-sms", "1",
		"-trace-out", trace, "-energy-out", bad,
	}, &out)
	if err == nil {
		t.Fatal("run succeeded with an uncreatable output path")
	}
	if _, statErr := os.Stat(trace); !os.IsNotExist(statErr) {
		t.Errorf("partial %s left behind (stat err: %v)", trace, statErr)
	}
}

// TestBadFlagCreatesNoFiles: flag validation failures must fire before
// any output file is created.
func TestBadFlagCreatesNoFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{"-design", "bogus", "-trace-out", trace}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Fatalf("err = %v", err)
	}
	if _, statErr := os.Stat(trace); !os.IsNotExist(statErr) {
		t.Errorf("%s created despite bad -design", trace)
	}
}

// TestRecordThenReplayCheck exercises the full record → replay-check
// loop through the CLI.
func TestRecordThenReplayCheck(t *testing.T) {
	dir := t.TempDir()
	record := filepath.Join(dir, "run.ndjson")
	base := []string{"-bench", "sgemm", "-scale", "0.1", "-sms", "1"}

	var out bytes.Buffer
	if err := run(append(base[:len(base):len(base)], "-record-out", record), &out); err != nil {
		t.Fatalf("record: %v", err)
	}
	out.Reset()
	if err := run(append(base[:len(base):len(base)], "-replay-check", record), &out); err != nil {
		t.Fatalf("replay-check: %v", err)
	}
	if !strings.Contains(out.String(), "replay-check:") {
		t.Errorf("no replay verdict printed:\n%s", out.String())
	}

	// A different scheduler must fail verification.
	err := run(append(base[:len(base):len(base)], "-sched", "lrr", "-replay-check", record), &out)
	if err == nil || !strings.Contains(err.Error(), "flightrec") {
		t.Fatalf("mismatched replay err = %v", err)
	}
}

// TestRecordAndReplayAreExclusive: the two sinks cannot share a run.
func TestRecordAndReplayAreExclusive(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-record-out", "a.ndjson", "-replay-check", "b.ndjson"}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}
