package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"pilotrf/internal/flightrec"
	"pilotrf/internal/perfscope"
)

// TestCombinedExporters drives the combined -trace-out/-energy-out/
// -record-out path end to end on one small benchmark: all three files
// must exist and be non-empty, and the recording must parse.
func TestCombinedExporters(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	energy := filepath.Join(dir, "energy.csv")
	record := filepath.Join(dir, "run.ndjson")

	var out bytes.Buffer
	err := run([]string{
		"-bench", "sgemm", "-scale", "0.1", "-sms", "1",
		"-trace-out", trace, "-energy-out", energy,
		"-record-out", record, "-record-every", "32",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, p := range []string{trace, energy, record} {
		st, err := os.Stat(p)
		if err != nil {
			t.Errorf("%s: %v", p, err)
			continue
		}
		if st.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
	log, err := flightrec.ReadFile(record)
	if err != nil {
		t.Fatalf("recording does not parse: %v", err)
	}
	if len(log.Events) == 0 || len(log.Checksums()) == 0 {
		t.Fatalf("recording has %d events, %d checksums", len(log.Events), len(log.Checksums()))
	}
	if !strings.Contains(out.String(), "sgemm") {
		t.Errorf("stdout missing benchmark row for sgemm:\n%s", out.String())
	}
}

// TestBadOutputPathLeavesNoPartialFiles: when one output path is
// invalid, no sibling output may be left behind (the pre-fix behaviour
// created earlier files before failing on the later one).
func TestBadOutputPathLeavesNoPartialFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	bad := filepath.Join(dir, "missing-subdir", "energy.csv")

	var out bytes.Buffer
	err := run([]string{
		"-bench", "sgemm", "-scale", "0.1", "-sms", "1",
		"-trace-out", trace, "-energy-out", bad,
	}, &out)
	if err == nil {
		t.Fatal("run succeeded with an uncreatable output path")
	}
	if _, statErr := os.Stat(trace); !os.IsNotExist(statErr) {
		t.Errorf("partial %s left behind (stat err: %v)", trace, statErr)
	}
}

// TestBadFlagCreatesNoFiles: flag validation failures must fire before
// any output file is created.
func TestBadFlagCreatesNoFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{"-design", "bogus", "-trace-out", trace}, &out)
	if err == nil || !strings.Contains(err.Error(), "unknown design") {
		t.Fatalf("err = %v", err)
	}
	if _, statErr := os.Stat(trace); !os.IsNotExist(statErr) {
		t.Errorf("%s created despite bad -design", trace)
	}
}

// TestRecordThenReplayCheck exercises the full record → replay-check
// loop through the CLI.
func TestRecordThenReplayCheck(t *testing.T) {
	dir := t.TempDir()
	record := filepath.Join(dir, "run.ndjson")
	base := []string{"-bench", "sgemm", "-scale", "0.1", "-sms", "1"}

	var out bytes.Buffer
	if err := run(append(base[:len(base):len(base)], "-record-out", record), &out); err != nil {
		t.Fatalf("record: %v", err)
	}
	out.Reset()
	if err := run(append(base[:len(base):len(base)], "-replay-check", record), &out); err != nil {
		t.Fatalf("replay-check: %v", err)
	}
	if !strings.Contains(out.String(), "replay-check:") {
		t.Errorf("no replay verdict printed:\n%s", out.String())
	}

	// A different scheduler must fail verification.
	err := run(append(base[:len(base):len(base)], "-sched", "lrr", "-replay-check", record), &out)
	if err == nil || !strings.Contains(err.Error(), "flightrec") {
		t.Fatalf("mismatched replay err = %v", err)
	}
}

// TestRecordAndReplayAreExclusive: the two sinks cannot share a run.
func TestRecordAndReplayAreExclusive(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-record-out", "a.ndjson", "-replay-check", "b.ndjson"}, &out)
	if err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("err = %v", err)
	}
}

// TestFaultFlags: -fault-rate wires the injector and prints outcome
// counters; a bad -protect is a usage error before any file is created.
func TestFaultFlags(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-bench", "sgemm", "-scale", "0.1", "-sms", "1",
		"-fault-rate", "2e-11", "-fault-seed", "7", "-protect", "secded",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "faults[") {
		t.Errorf("no fault counters printed:\n%s", out.String())
	}
	if err := run([]string{"-protect", "chipkill"}, &out); err == nil {
		t.Error("unknown -protect accepted")
	}
	if err := run([]string{"-fault-rate", "-2"}, &out); err == nil {
		t.Error("negative -fault-rate accepted")
	}
}

// TestInterruptFlushesAndExits3 drives the built binary: SIGINT during
// the benchmark sweep must stop at the next benchmark boundary, still
// flush the requested outputs, and exit with the distinct code 3.
func TestInterruptFlushesAndExits3(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("POSIX signal delivery")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "pilotsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building pilotsim: %v\n%s", err, out)
	}

	metrics := filepath.Join(dir, "metrics.csv")
	// Scale 0.5 runs every benchmark for several seconds; the signal
	// lands long before the sweep can finish.
	cmd := exec.Command(bin, "-scale", "0.5", "-sms", "1", "-metrics-out", metrics)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(400 * time.Millisecond)
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if code := cmd.ProcessState.ExitCode(); code != 3 {
		t.Fatalf("exit code = %d (err %v), want 3\nstdout:\n%s\nstderr:\n%s",
			code, err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stderr.String(), "interrupted") {
		t.Errorf("stderr missing interrupt notice:\n%s", stderr.String())
	}
	st, statErr := os.Stat(metrics)
	if statErr != nil {
		t.Fatalf("metrics CSV not flushed: %v", statErr)
	}
	if st.Size() == 0 {
		t.Error("metrics CSV flushed empty")
	}
}

// TestParallelByteIdentical runs the same multi-benchmark sweep
// sequentially and on a 4-worker pool; the stdout bytes must match
// exactly (the parallel path merges per-benchmark buffers in canonical
// order).
func TestParallelByteIdentical(t *testing.T) {
	args := []string{"-bench", "", "-scale", "0.05", "-sms", "1", "-v",
		"-fault-rate", "2e-11", "-protect", "secded"}
	var seq, par bytes.Buffer
	if err := run(append([]string{"-parallel", "1"}, args...), &seq); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	if err := run(append([]string{"-parallel", "4"}, args...), &par); err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if seq.String() != par.String() {
		t.Fatalf("parallel output differs from sequential:\n--- seq\n%s\n--- par\n%s",
			seq.String(), par.String())
	}
	if n := strings.Count(par.String(), "\n"); n < 10 {
		t.Fatalf("suspiciously short sweep output (%d lines):\n%s", n, par.String())
	}
}

// TestParallelRejectsSharedObservers: -parallel > 1 combined with an
// exporter that tees one stream across benchmarks is a usage error, and
// no output file may be left behind.
func TestParallelRejectsSharedObservers(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	var out bytes.Buffer
	err := run([]string{"-bench", "sgemm", "-parallel", "2", "-trace-out", trace}, &out)
	if err == nil {
		t.Fatal("parallel run with -trace-out succeeded")
	}
	if _, ok := err.(usageError); !ok {
		t.Fatalf("error %v is %T, want usageError", err, err)
	}
	if _, statErr := os.Stat(trace); !os.IsNotExist(statErr) {
		t.Errorf("rejected run left %s behind", trace)
	}
	if err := run([]string{"-parallel", "0"}, &out); err == nil {
		t.Fatal("-parallel 0 accepted")
	}
}

// TestPerfOut: -perf-out writes a valid pilotrf-perfscope/v1 report
// with one entry per benchmark, and -parallel rejects it like the other
// shared observers.
func TestPerfOut(t *testing.T) {
	dir := t.TempDir()
	perf := filepath.Join(dir, "perf.json")
	var out bytes.Buffer
	if err := run([]string{"-bench", "sgemm", "-sms", "1", "-scale", "0.1", "-perf-out", perf}, &out); err != nil {
		t.Fatal(err)
	}
	r, err := perfscope.ReadFile(perf)
	if err != nil {
		t.Fatalf("perf report does not validate: %v", err)
	}
	if len(r.Entries) != 1 || r.Entries[0].Workload != "sgemm" {
		t.Fatalf("report entries %+v, want one sgemm row", r.Entries)
	}
	e := r.Entries[0]
	if e.Design != "part-adaptive" {
		t.Errorf("entry design %q, want the default part-adaptive", e.Design)
	}
	if e.Census.SMCycles == 0 {
		t.Error("census observed no cycles")
	}
	if e.Wall == nil || e.Wall.TotalNS <= 0 {
		t.Error("pilotsim -perf-out should time phases (wall clock on)")
	}

	rejected := filepath.Join(dir, "rejected.json")
	err = run([]string{"-bench", "sgemm", "-parallel", "2", "-perf-out", rejected}, &out)
	if err == nil {
		t.Fatal("-parallel 2 with -perf-out accepted")
	}
	if _, ok := err.(usageError); !ok {
		t.Fatalf("error %v is %T, want usageError", err, err)
	}
	if _, statErr := os.Stat(rejected); !os.IsNotExist(statErr) {
		t.Errorf("rejected run left %s behind", rejected)
	}
}
