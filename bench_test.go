package pilotrf

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper. Each benchmark regenerates its artifact and reports the
// headline quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the whole evaluation. Simulation results are cached in a
// shared runner (the workloads are deterministic), so iterations beyond
// the first are cheap; run with -benchtime=1x for a single full pass.
//
// The runner uses scale 0.5 on one SM, which preserves the designed
// CTA-wave structure (identical to full scale on the two-SM default).

import (
	"sync"
	"testing"

	"pilotrf/internal/experiments"
	"pilotrf/internal/finfet"
	"pilotrf/internal/sim"
	"pilotrf/internal/workloads"
)

var (
	benchOnce   sync.Once
	benchRunner *experiments.Runner
)

func runner() *experiments.Runner {
	benchOnce.Do(func() { benchRunner = experiments.NewRunner(0.5, 1) })
	return benchRunner
}

func BenchmarkFigure1_FO4DelayVsVdd(b *testing.B) {
	var pts []finfet.Figure1Point
	for i := 0; i < b.N; i++ {
		pts = experiments.Figure1()
	}
	var ntv, stv float64
	for _, p := range pts {
		switch p.Vdd {
		case 0.30:
			ntv = p.DelayNS
		case 0.45:
			stv = p.DelayNS
		}
	}
	b.ReportMetric(stv, "chain-ns@STV")
	b.ReportMetric(ntv, "chain-ns@NTV")
	b.ReportMetric(ntv/stv, "NTV:STV-ratio")
}

func BenchmarkTable1_BenchmarkInfo(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1(runner())
	}
	var geomeanable []float64
	for _, r := range rows {
		geomeanable = append(geomeanable, r.MeasuredPilotPct)
		if r.Benchmark == "LIB" {
			b.ReportMetric(r.MeasuredPilotPct, "LIB-pilot-pct")
		}
		if r.Benchmark == "WP" {
			b.ReportMetric(r.MeasuredPilotPct, "WP-pilot-pct")
		}
	}
	b.ReportMetric(float64(len(rows)), "benchmarks")
}

func BenchmarkFigure2_TopNAccessShare(b *testing.B) {
	var res experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure2(runner())
	}
	b.ReportMetric(res.Avg3*100, "top3-pct(paper:62)")
	b.ReportMetric(res.Avg4*100, "top4-pct(paper:72)")
	b.ReportMetric(res.Avg5*100, "top5-pct(paper:77)")
}

func BenchmarkFigure4_ProfilingEfficiency(b *testing.B) {
	var rows []experiments.Figure4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure4(runner())
	}
	var comp, pilot, hybrid, opt float64
	for _, r := range rows {
		comp += r.Compiler
		pilot += r.Pilot
		hybrid += r.Hybrid
		opt += r.Optimal
	}
	n := float64(len(rows))
	b.ReportMetric(comp/n*100, "compiler-pct")
	b.ReportMetric(pilot/n*100, "pilot-pct")
	b.ReportMetric(hybrid/n*100, "hybrid-pct")
	b.ReportMetric(opt/n*100, "optimal-pct")
}

func BenchmarkTable3_SRAMCells(b *testing.B) {
	var rows []finfet.Table3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table3()
	}
	b.ReportMetric(rows[0].IOn*1e6, "Ion-uA/um@NTV(paper:750.5)")
	b.ReportMetric(rows[1].SNM*1000, "SNM-mV@STV(paper:144)")
}

func BenchmarkTable4_RFCharacteristics(b *testing.B) {
	var frfLow, mrf float64
	for i := 0; i < b.N; i++ {
		t4 := experiments.Table4()
		frfLow, mrf = t4[0].AccessEnergyPJ, t4[3].AccessEnergyPJ
	}
	b.ReportMetric(frfLow, "FRFlow-pJ(paper:5.25)")
	b.ReportMetric(mrf, "MRF-pJ(paper:14.9)")
}

func BenchmarkFigure10_AccessDistribution(b *testing.B) {
	var res experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure10(runner())
	}
	b.ReportMetric(res.AvgFRF*100, "FRF-pct(paper:62)")
	b.ReportMetric(res.AvgLowShareOfFRF*100, "lowmode-pct(paper:22)")
}

func BenchmarkFigure11_DynamicEnergy(b *testing.B) {
	var res experiments.Figure11Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure11(runner())
	}
	b.ReportMetric(res.AvgSavingsAdaptive*100, "saving-pct(paper:54)")
	b.ReportMetric(res.AvgSavingsNTV*100, "ntv-saving-pct(paper:47)")
}

func BenchmarkLeakageSavings(b *testing.B) {
	var l experiments.LeakageReport
	for i := 0; i < b.N; i++ {
		l = experiments.Leakage()
	}
	b.ReportMetric(l.SavingsPct, "saving-pct(paper:39)")
	b.ReportMetric(l.FRFShareOfMRF*100, "FRF-share-pct(paper:21.5)")
	b.ReportMetric(l.SRFShareOfMRF*100, "SRF-share-pct(paper:39.7)")
}

func BenchmarkFigure12_ExecutionTime(b *testing.B) {
	var res experiments.Figure12Result
	for i := 0; i < b.N; i++ {
		res = experiments.Figure12(runner())
	}
	b.ReportMetric((res.GeoHybridGTO-1)*100, "hybrid-ovh-pct(paper:<2)")
	b.ReportMetric((res.GeoNTVGTO-1)*100, "ntv-ovh-pct(paper:7.1)")
	b.ReportMetric((res.GeoCompilerGTO-1)*100, "compiler-ovh-pct")
}

func BenchmarkSRFLatencySensitivity(b *testing.B) {
	var pts []experiments.LatencyPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.SRFLatencySensitivity(runner())
	}
	base := pts[0].GeoSlowdown
	b.ReportMetric((pts[1].GeoSlowdown-base)*100, "4cyc-extra-pct(paper:0.5)")
	b.ReportMetric((pts[2].GeoSlowdown-base)*100, "5cyc-extra-pct(paper:2.4)")
}

func BenchmarkEpochSensitivity(b *testing.B) {
	var pts []experiments.EpochPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.EpochSensitivity(runner())
	}
	lo, hi := pts[0].GeoSlowdown, pts[0].GeoSlowdown
	for _, p := range pts {
		if p.GeoSlowdown < lo {
			lo = p.GeoSlowdown
		}
		if p.GeoSlowdown > hi {
			hi = p.GeoSlowdown
		}
	}
	b.ReportMetric((hi-lo)*100, "spread-pct(paper:small)")
}

func BenchmarkThresholdSweep(b *testing.B) {
	var pts []experiments.ThresholdPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.ThresholdSweep(runner())
	}
	for _, p := range pts {
		if p.Threshold == 85 {
			b.ReportMetric(p.AvgLowShare*100, "lowmode-pct@85(paper:22)")
			b.ReportMetric((p.GeoSlowdown-1)*100, "ovh-pct@85")
		}
	}
}

func BenchmarkFigure13_RFCScaling(b *testing.B) {
	var rows []experiments.Figure13Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Figure13(runner())
	}
	b.ReportMetric((1-rows[0].RFCEnergy)*100, "rfc-saving-pct@8w")
	b.ReportMetric((1-rows[2].RFCEnergy)*100, "rfc-saving-pct@32w")
	b.ReportMetric((1-rows[3].RFCEnergy)*100, "rfc-saving-pct@STV(paper:10)")
	b.ReportMetric((1-rows[2].PartitionedEnergy)*100, "part-saving-pct@32w")
	b.ReportMetric((rows[0].RFCSlowdown-1)*100, "rfc-ovh-pct@8w(paper:9.5)")
	b.ReportMetric((rows[2].RFCSlowdown-1)*100, "rfc-ovh-pct@32w(paper:3.3)")
}

func BenchmarkRFCPortScaling(b *testing.B) {
	var rows []experiments.PortScalingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RFCPortScaling()
	}
	b.ReportMetric(rows[0].RelativeToMRF, "R2W1-x(paper:0.37)")
	b.ReportMetric(rows[2].RelativeToMRF, "R8W4-x(paper:3.0)")
	b.ReportMetric(experiments.BankedRFCEnergyRelative(), "banked-x(paper:~1)")
}

func BenchmarkSwappingTable(b *testing.B) {
	var rows []experiments.SwapTableRow
	for i := 0; i < b.N; i++ {
		rows = experiments.SwapTableDelays()
	}
	for _, r := range rows {
		switch r.Tech.String() {
		case "7nm FinFET":
			b.ReportMetric(r.DelayPS, "7nm-ps(paper:55)")
		case "22nm CMOS":
			b.ReportMetric(r.DelayPS, "22nm-ps(paper:105)")
		}
	}
	b.ReportMetric((experiments.SwapTablePenalty(runner())-1)*100, "extra-cycle-ovh-pct")
}

func BenchmarkAblationFRFSize(b *testing.B) {
	var pts []experiments.FRFSizePoint
	for i := 0; i < b.N; i++ {
		pts = experiments.FRFSizeSweep(runner())
	}
	for _, p := range pts {
		if p.FRFRegs == 4 {
			b.ReportMetric(p.AvgFRFShare*100, "share-pct@4regs")
		}
		if p.FRFRegs == 8 {
			b.ReportMetric(p.AvgFRFShare*100, "share-pct@8regs")
		}
	}
}

func BenchmarkAblationForwarding(b *testing.B) {
	var pts []experiments.ForwardingPoint
	for i := 0; i < b.N; i++ {
		pts = experiments.ForwardingAblation(runner())
	}
	b.ReportMetric((pts[0].GeoNTV-1)*100, "ntv-ovh-pct-nofwd")
	b.ReportMetric((pts[1].GeoNTV-1)*100, "ntv-ovh-pct-fwd")
}

func BenchmarkExtensionRegisterGating(b *testing.B) {
	var rows []experiments.GatingRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RegisterGatingExtension(runner())
	}
	var sum float64
	for _, r := range rows {
		sum += r.GatedSavings
	}
	b.ReportMetric(sum/float64(len(rows)), "avg-gated-saving-pct")
}

func BenchmarkExtensionVoltageSweep(b *testing.B) {
	var pts []experiments.VoltagePoint
	for i := 0; i < b.N; i++ {
		pts = experiments.VoltageSweep()
	}
	for _, p := range pts {
		if p.Vdd == 0.30 {
			b.ReportMetric(p.AccessEnergyPJ, "pJ@0.3V")
			b.ReportMetric(float64(p.AccessCycles), "cycles@0.3V")
		}
	}
}

func BenchmarkScorecard(b *testing.B) {
	var rows []experiments.ScoreRow
	for i := 0; i < b.N; i++ {
		rows = experiments.Scorecard(runner())
	}
	pass := 0
	for _, r := range rows {
		if r.Pass {
			pass++
		}
	}
	b.ReportMetric(float64(pass), "rows-pass")
	b.ReportMetric(float64(len(rows)), "rows-total")
}

// BenchmarkSimulatorThroughput measures the raw simulation speed of the
// cycle-level model (not a paper artifact; an engineering metric).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, err := workloads.ByName("srad")
	if err != nil {
		b.Fatal(err)
	}
	w = w.Scale(0.1)
	cfg := sim.DefaultConfig()
	cfg.NumSMs = 1
	b.ResetTimer()
	var cycles int64
	for i := 0; i < b.N; i++ {
		g, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		rs, err := g.RunKernels(w.Name, w.Kernels)
		if err != nil {
			b.Fatal(err)
		}
		cycles += rs.TotalCycles()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds()/1e6, "Mcycles/s")
}
